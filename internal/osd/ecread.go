package osd

import (
	"math/bits"

	"repro/internal/filestore"
	"repro/internal/sim"
)

// EC read path. An erasure-coded pool cannot serve a read from one copy:
// the primary gathers k of the k+m shards — its own read inline, the rest
// over the cluster network — and reconstructs when the gathered set is not
// the canonical data set. The gather launches the first k up members in
// canonical order and pumps one replacement per damaged answer, so the
// happy path costs exactly k shard reads and the degraded path walks the
// acting set until k usable answers exist or the candidates run out (EIO).
//
// The protocol mirrors read-repair: MsgShardRead rides the holder's PG
// queue like a replication sub-op; MsgShardReadReply is handled in
// messenger context at the primary like a fast ack. The client op stays
// parked on the primary holding its msgCap token until the assembled reply
// (or the EIO) releases it. A damaged or absent shard is never served:
// absence is a usable answer (the stripe may predate the extent), damage is
// not. A damaged local shard additionally queues the asynchronous heal from
// a clean peer snapshot, exactly like replicated read-repair.

// ecGather is the primary-side state of one in-flight shard gather.
type ecGather struct {
	op   *ClientOp
	need int // usable answers still required (starts at k)
	next int // next acting-set slot to try
	out  int // launched, unanswered shard reads

	usedMask uint64 // acting-set slots that answered usable
	stamp    uint64 // max stamp over existing usable answers
	exists   bool   // any usable answer had the extent

	// Heal state for a damaged local shard: the first clean peer snapshot.
	healState    filestore.ObjectState
	healOK       bool
	localDamaged bool

	done bool // served or EIOed; late answers are dropped
}

// recordUsable folds one usable (undamaged) shard answer into the gather.
func (g *ecGather) recordUsable(idx int, stamp uint64, exists bool) {
	g.need--
	g.usedMask |= 1 << uint(idx)
	if exists {
		g.exists = true
		if stamp > g.stamp {
			g.stamp = stamp
		}
	}
}

// processECRead services a read on an EC primary under the PG lock.
func (o *OSD) processECRead(p *sim.Proc, eng *engine, op *ClientOp) {
	o.metrics.ReadOps.Inc()
	c := &o.cfg.Costs
	o.logger.Log(p, siteRead, o.cfg.LogPerStage)
	o.node.UseWithAllocs(p, c.OpSetupCPU, c.OpSetupAllocs)
	if o.gen != eng.gen {
		return // crashed during op setup; client retries
	}
	g := &ecGather{op: op, need: o.pol.DataShards()}
	o.ecPump(p, eng, g)
}

// ecPump drives the gather: it keeps `need` shard reads in flight while
// untried candidates remain, serves the client once k usable answers are
// in, and fails with EIO when the acting set is exhausted short of k.
// Called from the primary worker (initial launch, local read inline) and
// from messenger context on each shard reply.
func (o *OSD) ecPump(p *sim.Proc, eng *engine, g *ecGather) {
	set := o.shardPlacer(g.op.PG)
	for !g.done && g.need > 0 && g.out < g.need && g.next < len(set) {
		idx := g.next
		g.next++
		t := set[idx]
		if t.EP == nil && !t.Self {
			continue // down member: never launched, never counted
		}
		g.out++
		if t.Self {
			o.localShardRead(p, eng, g, idx)
		} else {
			o.node.Use(p, o.cfg.Costs.RepSendCPU)
			sr := &shardRead{op: g.op, primary: o.cep, gen: eng.gen, idx: idx, g: g}
			o.cep.Send(p, t.EP, 200, MsgShardRead, sr)
		}
	}
	if g.done {
		return
	}
	if g.need == 0 {
		o.ecServe(p, eng, g)
		return
	}
	if g.out == 0 {
		// Every candidate answered or was down and fewer than k shards are
		// usable: the stripe is unreadable right now.
		g.done = true
		o.sendEIO(p, eng, g.op)
	}
}

// localShardRead reads this OSD's own shard inline (worker context, PG
// lock held). A damaged local shard is an unusable answer — the pump
// launches a replacement — and flags the asynchronous heal.
func (o *OSD) localShardRead(p *sim.Proc, eng *engine, g *ecGather, idx int) {
	c := &o.cfg.Costs
	o.node.Use(p, c.ReadCPU)
	op := g.op
	st, exists := o.store.Read(p, op.OID, op.Off, o.pol.ShardLen(op.Len))
	if o.gen != eng.gen {
		g.done = true // crashed mid-read: the gather dies with this daemon
		return
	}
	g.out--
	if exists && o.store.ExtentDamaged(op.OID, op.Off) {
		g.localDamaged = true
		return
	}
	g.recordUsable(idx, st, exists)
}

// processShardRead serves the primary's gather fetch on a shard holder,
// under the PG lock. A clean shard (present or absent) answers ok with a
// state snapshot when present — the payload for a damaged primary's heal;
// a damaged one reports unusable so the pump tries the next member.
func (o *OSD) processShardRead(p *sim.Proc, eng *engine, sr *shardRead) {
	o.metrics.RepReads.Inc()
	c := &o.cfg.Costs
	o.logger.Log(p, siteRead, o.cfg.LogPerStage)
	o.node.UseWithAllocs(p, c.OpSetupCPU, c.OpSetupAllocs)
	o.node.Use(p, c.ReadCPU)
	op := sr.op // read-only here: the op is primary-owned
	shardLen := o.pol.ShardLen(op.Len)
	st, exists := o.store.Read(p, op.OID, op.Off, shardLen)
	if o.gen != eng.gen {
		return // crashed mid-read: the fetch dies with this daemon
	}
	reply := &shardReadReply{sr: sr, stamp: st, exists: exists}
	if !exists || !o.store.ExtentDamaged(op.OID, op.Off) {
		reply.ok = true
		if exists {
			if state, ok := o.store.ExportObject(op.OID); ok {
				reply.state, reply.stateOK = state, true
			}
		}
	}
	o.cep.Send(p, sr.primary, shardLen+c.ReadReplyOverhead, MsgShardReadReply, reply)
}

// handleShardReadReply folds a holder's answer into the gather at the
// primary (messenger context) and pumps the next step.
func (o *OSD) handleShardReadReply(p *sim.Proc, srr *shardReadReply) {
	eng := o.eng
	g := srr.sr.g
	if g.done {
		return // already served or EIOed; late answer
	}
	g.out--
	if srr.ok {
		g.recordUsable(srr.sr.idx, srr.stamp, srr.exists)
		if srr.stateOK && !g.healOK {
			g.healState, g.healOK = srr.state, true
		}
	}
	o.ecPump(p, eng, g)
}

// ecServe replies to the client from k gathered shards, charging the
// reconstruction CPU when any gathered shard is parity (i.e. the used set
// is not the canonical first-k data set), then queues the heal of a
// damaged local shard off the read path.
func (o *OSD) ecServe(p *sim.Proc, eng *engine, g *ecGather) {
	g.done = true
	op := g.op
	oid := op.OID
	c := &o.cfg.Costs
	k := o.pol.DataShards()
	dataMask := uint64(1)<<uint(k) - 1
	if g.exists && g.usedMask&dataMask != dataMask {
		lost := k - bits.OnesCount64(g.usedMask&dataMask)
		o.node.Use(p, o.pol.DecodeCost(op.Len, lost))
	}
	o.logger.Log(p, siteAck, o.cfg.LogPerStage)
	rep := o.newReply()
	rep.Op, rep.Stamp, rep.Exists = op, g.stamp, g.exists
	o.ep.Send(p, op.Client, op.Len+c.ReadReplyOverhead, MsgReply, rep)
	eng.msgCap.Release(1)
	// The client is served; op must not be referenced past this point.
	if g.localDamaged && g.healOK {
		o.metrics.ReadRepairs.Inc()
		if o.integrityNote != nil {
			o.integrityNote(p, oid, NoteReadRepair)
		}
		o.queueRepair(g.healState, oid)
	}
}
