package figures

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// LatencyBreakdown reproduces the paper's §3 attribution methodology on
// the Figure 1 write workload (community profile at its saturation point,
// 64 client threads as 4 VMs x depth 16): per-segment p50/p99/max/mean of
// the write path's telescoping critical-path segments, whose per-op
// deltas sum exactly to end-to-end latency. Two extra rows report the
// work that happens off the acked path: the post-ack filestore/KV apply
// and completion-dispatch queueing. Fully deterministic under the sim
// clock, so it is golden-tested like the paper figures.
func LatencyBreakdown(opt Options) Report {
	rep, _ := latencyBreakdown(opt, false)
	return rep
}

// LatencyBreakdownWithPerf additionally returns the cluster's perf-dump
// JSON captured after the run (the afbench/afsim -perf-dump hook).
func LatencyBreakdownWithPerf(opt Options) (Report, string) {
	return latencyBreakdown(opt, true)
}

func latencyBreakdown(opt Options, wantPerf bool) (Report, string) {
	prof := withJournal(func(id int) osd.Config {
		cfg := osd.CommunityConfig(id)
		cfg.TraceSample = 5
		return cfg
	}, opt.JournalMB)
	p := profileParams(opt, prof, cpumodel.TCMalloc, false, true)
	c := cluster.New(p)
	f := workload.VMFleet(c, 4, 512<<20, workload.Spec{
		Pattern:   workload.RandWrite,
		BlockSize: 4096,
		IODepth:   16,
		Runtime:   opt.runtime(),
		Ramp:      opt.ramp(),
		Seed:      opt.Seed,
	})
	res := f.Run(c.K)
	noteSim(c.K)

	agg := osd.NewTraceCollector(true)
	applyH := stats.NewHistogram()
	compH := stats.NewHistogram()
	for _, o := range c.OSDs() {
		agg.Merge(o.Traces())
		applyH.Merge(o.ApplyDelay)
		compH.Merge(o.CompletionQDelay)
	}

	rep := Report{
		Title:  "Latency breakdown: per-segment attribution on the Fig. 1 write workload (community, 64 threads)",
		Header: trace.BreakdownHeader,
	}
	var segMeanSum float64
	var e2e trace.BreakdownRow
	for _, r := range agg.Breakdown() {
		if r.Label == "end-to-end" {
			e2e = r
		} else {
			segMeanSum += r.Mean
		}
		rep.Rows = append(rep.Rows, r.Cells())
	}
	// Write-ahead order puts the filestore/KV apply after the client ack,
	// so it is reported outside the telescoping chain, as is the
	// commit/applied completion-dispatch queueing it overlaps.
	rep.Rows = append(rep.Rows, trace.RowFromHistogram("post-ack:kv-apply", applyH).Cells())
	rep.Rows = append(rep.Rows, trace.RowFromHistogram("async:completion-dispatch", compH).Cells())
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("workload: %s", res.String()),
		fmt.Sprintf("%d sampled spans; segment means sum to %.3f ms vs end-to-end mean %.3f ms (telescoping chain; quantile sums are approximate)",
			agg.Count(), segMeanSum, e2e.Mean),
		"paper §3: this per-stage attribution is what pinned the four bottlenecks (PG lock, throttles, logging, transactions)")

	perf := ""
	if wantPerf {
		perf = c.Perf().DumpJSON()
	}
	return rep, perf
}
