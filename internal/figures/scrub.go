package figures

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/crush"
	"repro/internal/osd"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Scrub quantifies the cost and the benefit of online self-healing: one
// mixed random workload runs three times — scrub off, scrub throttled
// (bandwidth budget + one PG at a time + head-of-line yielding), and scrub
// unthrottled — while bit-rot is injected into cold primary copies mid-run.
// The table reports the client view (IOPS, mean and p99 latency) against
// the integrity view (findings, repairs, and the time from injection to
// detection and to repair). The story the rows tell: without scrub, cold
// rot sits undetected forever; unthrottled scrub detects fastest but taxes
// the client tail; the throttle buys the tail back at the price of slower
// detection.
func Scrub(opt Options) Report {
	rep := Report{
		Title: "scrub: client impact vs time-to-detect/repair for injected bit-rot (AFCeph tuning)",
		Header: []string{"mode", "iops", "lat-ms", "p99-ms",
			"scrubbed", "findings", "repairs", "read-repairs", "eios",
			"detected", "ttd-ms", "ttr-ms"},
	}
	modes := []struct {
		name string
		sp   cluster.ScrubParams
	}{
		{"off", cluster.ScrubParams{}},
		{"throttled", cluster.ScrubParams{
			Interval:         5 * sim.Millisecond,
			DeepEvery:        1,
			BytesPerSec:      128 << 20,
			MaxConcurrentPGs: 1,
			AutoRepair:       true,
			SettleDelay:      2 * sim.Millisecond,
		}},
		{"unthrottled", cluster.ScrubParams{
			Interval:         sim.Millisecond,
			DeepEvery:        1,
			MaxConcurrentPGs: 8,
			AutoRepair:       true,
			SettleDelay:      2 * sim.Millisecond,
		}},
	}
	const rotCount = 3
	rows := parallelPoints(opt.Workers, len(modes), func(mi int) []string {
		m := modes[mi]
		p := profileParams(opt, withJournal(osd.AFCephConfig, opt.JournalMB), cpumodel.JEMalloc, true, true)
		p.Scrub = m.sp
		vms, depth := opt.scaleLoad(8, 8)
		spec := workload.Spec{
			Pattern:   workload.RandRW,
			BlockSize: 4096,
			ReadPct:   70,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.rampWrite(),
			Seed:      opt.Seed,
		}
		c := cluster.New(p)
		f := workload.VMFleet(c, vms, 64<<20, spec)
		end := opt.rampWrite() + opt.runtime()

		// Rot injector: rot lands on COLD data — dedicated objects written
		// once and never read by the fleet — so client reads cannot stumble
		// into it and the background scrub is the only path to detection.
		// (Hot-data rot is the read-repair tests' territory; a client read
		// would heal it in every mode and flatten the comparison.) Each
		// injection corrupts the object's primary copy.
		type inj struct {
			oid string
			at  sim.Time
		}
		var injected []inj
		var injectDone bool
		ic := c.NewClient()
		c.K.Go("figure.rot", func(pp *sim.Proc) {
			ramp := opt.rampWrite()
			for i := 0; i < rotCount; i++ {
				at := ramp * sim.Time(i+1) / (rotCount + 1)
				if at > pp.Now() {
					pp.Sleep(at - pp.Now())
				}
				oid := fmt.Sprintf("scrub.cold.%d", i)
				ic.WriteObject(pp, oid, 0, 4096, 1000+uint64(i))
				pp.Sleep(10 * sim.Millisecond) // let replica applies settle
				pg := crush.ObjectToPG(oid, c.Params.PGs)
				primary := c.Map().PGToOSDs(pg, c.Params.Replicas)[0]
				if c.OSDs()[primary].Store().CorruptObject(oid) {
					injected = append(injected, inj{oid: oid, at: pp.Now()})
				}
			}
			injectDone = true
		})
		// Scrub keeps running for the whole client window (so the client
		// numbers include its full cost), then until every injected copy is
		// healed — that tail is where the slow modes pay their TTR — with a
		// hard deadline for the modes that never heal.
		c.K.Go("figure.monitor", func(pp *sim.Proc) {
			if end > pp.Now() {
				pp.Sleep(end - pp.Now())
			}
			deadline := end + 3*sim.Second
			for pp.Now() < deadline {
				clean := injectDone
				for _, in := range injected {
					for _, o := range c.OSDs() {
						if o.Store().ObjectDamaged(in.oid) {
							clean = false
						}
					}
				}
				if clean {
					break
				}
				pp.Sleep(10 * sim.Millisecond)
			}
			c.StopScrub()
		})
		res := f.Run(c.K)
		c.K.Run(sim.Forever)
		noteSim(c.K)

		var readRepairs, eios uint64
		for _, o := range c.OSDs() {
			readRepairs += o.Metrics().ReadRepairs.Value()
			eios += o.Metrics().EIOs.Value()
		}
		detected := 0
		var ttd, ttr sim.Time
		var healed int
		for _, in := range injected {
			var d, r sim.Time
			for _, ev := range c.IntegrityEvents() {
				if ev.OID != in.oid || ev.At < in.at {
					continue
				}
				if d == 0 && (ev.Kind == cluster.IntegrityFinding || ev.Kind == cluster.IntegrityReadRepair) {
					d = ev.At
				}
				if r == 0 && ev.Kind == cluster.IntegrityRepaired {
					r = ev.At
				}
			}
			if d > 0 {
				detected++
				ttd += d - in.at
			}
			if r > 0 {
				healed++
				ttr += r - in.at
			}
		}
		ttdCell, ttrCell := "-", "-"
		if detected > 0 {
			ttdCell = f1(float64(ttd) / float64(detected) / 1e6)
		}
		if healed > 0 {
			ttrCell = f1(float64(ttr) / float64(healed) / 1e6)
		}
		st := c.ScrubStats()
		return []string{
			m.name, f0(res.IOPS), f2(res.Lat.Mean), f2(res.Lat.P99),
			fmt.Sprintf("%d", st.ObjectsScrubbed.Value()),
			fmt.Sprintf("%d", st.Findings.Value()),
			fmt.Sprintf("%d", st.Repairs.Value()),
			fmt.Sprintf("%d", readRepairs),
			fmt.Sprintf("%d", eios),
			fmt.Sprintf("%d", detected),
			ttdCell, ttrCell,
		}
	})
	rep.Rows = append(rep.Rows, rows...)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d cold primary copies corrupted during the ramp of every mode; the run continues", rotCount),
		"past the client window until scrub heals them (or a 3s deadline for modes that cannot);",
		"ttd/ttr are mean injection-to-detection and injection-to-repair over the detected copies;",
		"the fleet never reads the cold objects, so read-repair cannot mask the scrub comparison.")
	return rep
}
