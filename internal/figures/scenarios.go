package figures

import (
	"fmt"

	"repro/internal/scenario"
)

// Scenarios renders the multi-tenant scenario engine's canonical runs as
// one figure: the steady baseline, noisy-neighbor and flash-crowd each with
// admission control off and on, and failover-under-load. The off/on pairs
// are the headline: the same scenario, same seed, differing only in whether
// the per-tenant token buckets are enforced, so the steady tenant's p99
// delta is attributable to admission control alone.
func Scenarios(opt Options) Report {
	type pointSpec struct {
		canon   string
		disable bool
		label   string
	}
	points := []pointSpec{
		{"steady-multi-tenant", false, "steady"},
		{"noisy-neighbor", true, "noisy-adm-off"},
		{"noisy-neighbor", false, "noisy-adm-on"},
		{"flash-crowd", true, "flash-adm-off"},
		{"flash-crowd", false, "flash-adm-on"},
		{"failover-under-load", false, "failover"},
	}
	results := parallelPoints(opt.Workers, len(points), func(i int) *scenario.Result {
		sc, err := scenario.Parse([]byte(scenario.Canon(points[i].canon)))
		if err != nil {
			panic("figures: canonical scenario " + points[i].canon + ": " + err.Error())
		}
		res, err := scenario.Run(sc, scenario.Options{Scale: opt.Scale, DisableAdmission: points[i].disable})
		if err != nil {
			panic("figures: scenario " + points[i].canon + ": " + err.Error())
		}
		noteSimNanos(int64(res.SimulatedTime))
		return res
	})

	rep := Report{
		Title:  "Scenarios: multi-tenant SLO classes and token-bucket admission control",
		Header: []string{"scenario", "tenant", "class", "offered", "accepted", "rejected", "iops", "p50(ms)", "p99(ms)", "jain"},
	}
	for i, res := range results {
		label := points[i].label
		for _, tr := range res.Tenants {
			rep.Rows = append(rep.Rows, []string{
				label, tr.Name, tr.Class,
				fmt.Sprintf("%d", tr.Offered), fmt.Sprintf("%d", tr.Accepted), fmt.Sprintf("%d", tr.Rejected),
				f0(tr.IOPS), f2(tr.Lat.P50), f2(tr.Lat.P99), "",
			})
		}
		rep.Rows = append(rep.Rows, []string{
			label, "TOTAL", "",
			fmt.Sprintf("%d", res.Offered), fmt.Sprintf("%d", res.Accepted), fmt.Sprintf("%d", res.Rejected),
			f0(res.IOPS), f2(res.Lat.P50), f2(res.Lat.P99), fmt.Sprintf("%.3f", res.Fairness),
		})
	}

	steadyP99 := func(res *scenario.Result) float64 {
		for _, tr := range res.Tenants {
			if tr.Name == "steady-gold" {
				return tr.Lat.P99
			}
		}
		return 0
	}
	for _, pair := range []struct {
		name    string
		off, on int
	}{
		{"noisy-neighbor", 1, 2},
		{"flash-crowd", 3, 4},
	} {
		off, on := steadyP99(results[pair.off]), steadyP99(results[pair.on])
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%s: admission control moves steady-gold p99 %.2fms -> %.2fms (%d ops rejected, fairness %.3f -> %.3f)",
			pair.name, off, on, results[pair.on].Rejected,
			results[pair.off].Fairness, results[pair.on].Fairness))
	}
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"failover-under-load: %d ops all accepted through an OSD crash and recovery (p99 %.2fms)",
		results[5].Accepted, results[5].Lat.P99))
	return rep
}
