package figures

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/osd"
)

// parseRow turns a breakdown row back into (label, count, p50, p99, max,
// mean) — the Cells layout pinned by trace.BreakdownHeader.
func parseRow(t *testing.T, row []string) (string, uint64, []float64) {
	t.Helper()
	if len(row) != 6 {
		t.Fatalf("row has %d cells: %v", len(row), row)
	}
	n, err := strconv.ParseUint(row[1], 10, 64)
	if err != nil {
		t.Fatalf("bad count %q: %v", row[1], err)
	}
	vals := make([]float64, 4)
	for i, cell := range row[2:] {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", cell, err)
		}
		vals[i] = v
	}
	return row[0], n, vals
}

// TestBreakdownTelescopes is the acceptance check for the tentpole: the
// per-segment means of the telescoping chain sum (within table rounding)
// to the end-to-end mean, every segment saw every sampled span, and the
// quantile columns sum to the same order as end-to-end (quantiles do not
// telescope exactly; means do).
func TestBreakdownTelescopes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a cluster workload")
	}
	rep := LatencyBreakdown(Options{Scale: 0.04, RuntimeSec: 0.6, RampSec: 0.2, JournalMB: 32, Seed: 1})
	want := len(osd.WriteSpec.Segments) + 3
	if len(rep.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(rep.Rows), want)
	}

	var meanSum, p50Sum, p99Sum float64
	var e2e []float64
	var count uint64
	for _, row := range rep.Rows[:len(osd.WriteSpec.Segments)+1] {
		label, n, vals := parseRow(t, row)
		if label == "end-to-end" {
			e2e = vals
			count = n
			continue
		}
		if n == 0 {
			t.Fatalf("segment %s saw no samples", label)
		}
		if count != 0 && n != count {
			t.Fatalf("segment %s count %d != end-to-end %d", label, n, count)
		}
		p50Sum += vals[0]
		p99Sum += vals[1]
		meanSum += vals[3]
	}
	if e2e == nil {
		t.Fatal("no end-to-end row")
	}
	if count == 0 {
		t.Fatal("no spans sampled")
	}
	// Means telescope exactly; each of the 8 segment cells and the
	// end-to-end cell is rounded to 3 decimals, so allow 9 half-ulps.
	if tol := 0.0005 * 9; math.Abs(meanSum-e2e[3]) > tol {
		t.Fatalf("segment means sum to %.4f, end-to-end mean %.4f (tol %.4f)", meanSum, e2e[3], tol)
	}
	// Quantiles only approximately telescope (bucket edges + per-op mix);
	// they must still bracket end-to-end within a loose band.
	if p50Sum < e2e[0]*0.5 || p50Sum > e2e[0]*1.5 {
		t.Fatalf("segment p50 sum %.4f far from end-to-end p50 %.4f", p50Sum, e2e[0])
	}
	if p99Sum < e2e[1]*0.5 || p99Sum > e2e[1]*2.0 {
		t.Fatalf("segment p99 sum %.4f far from end-to-end p99 %.4f", p99Sum, e2e[1])
	}

	// The async rows exist and saw the same workload.
	kvRow, dispRow := rep.Rows[want-2], rep.Rows[want-1]
	if kvRow[0] != "post-ack:kv-apply" || dispRow[0] != "async:completion-dispatch" {
		t.Fatalf("async rows mislabelled: %q, %q", kvRow[0], dispRow[0])
	}
	if _, n, _ := parseRow(t, kvRow); n == 0 {
		t.Fatal("kv-apply histogram empty")
	}
}
