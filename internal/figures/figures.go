// Package figures regenerates every figure of the paper's evaluation
// (Figures 1, 3, 4, 9, 10, 11, 12) on the simulated testbed. Each Fig*
// function builds the clusters it needs, runs the workloads, and returns a
// Report with the same rows/series the paper plots. Options.Scale trades
// fidelity for wall-clock time so the same harness serves both `go test
// -bench` smoke runs and full cmd/afbench reproductions.
package figures

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/oslog"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Options controls experiment sizing.
type Options struct {
	// Scale in (0,1] multiplies VM counts and runtimes; 1.0 is the
	// paper-shaped experiment.
	Scale float64
	// RuntimeSec is the measured window per data point at Scale=1.
	RuntimeSec float64
	// RampSec is the warm-up per data point at Scale=1.
	RampSec float64
	// JournalMB overrides the per-OSD journal ring size. The paper used
	// 2 GB and multi-minute runs; scaled-down rings make the journal-full
	// dynamics (Fig. 10) observable inside short simulations. 0 keeps 2 GB.
	JournalMB int
	// Seed makes runs reproducible.
	Seed uint64
	// Workers bounds the pool running a figure's independent data points
	// concurrently; 0 means sim.DefaultWorkers(). Reports are bit-identical
	// for every value — the differential determinism tests enforce it.
	Workers int
}

// DefaultOptions returns bench-friendly sizing.
func DefaultOptions() Options {
	return Options{Scale: 0.25, RuntimeSec: 2.0, RampSec: 0.6, JournalMB: 96, Seed: 1}
}

func (o Options) scaleVMs(n int) int {
	v := int(float64(n)*o.Scale + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// scaleLoad reduces the VM count by Scale while preserving the total
// outstanding I/O (vms*depth), so scaled experiments stay in the same
// throughput-bound regime as the full-size ones.
func (o Options) scaleLoad(vmsFull, depth int) (vms, effDepth int) {
	vms = o.scaleVMs(vmsFull)
	effDepth = (depth*vmsFull + vms - 1) / vms
	if effDepth > 128 {
		effDepth = 128
	}
	if effDepth < depth {
		effDepth = depth
	}
	return vms, effDepth
}

func (o Options) runtime() sim.Time { return sim.Time(o.RuntimeSec * o.Scale * float64(sim.Second)) }
func (o Options) ramp() sim.Time    { return sim.Time(o.RampSec * o.Scale * float64(sim.Second)) }

// rampWrite is the warm-up for write workloads: at least 0.8 virtual
// seconds, long enough for the journal ring and filestore throttle to reach
// steady state so we do not report the buffering transient as throughput.
func (o Options) rampWrite() sim.Time {
	r := o.ramp()
	if min := 800 * sim.Millisecond; r < min {
		return min
	}
	return r
}

// Report is one regenerated figure: a titled table plus optional notes and
// named time series.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	Series []stats.TimeSeries
}

// CSV renders the report's table as comma-separated values (header first).
// Cells are plain numbers/identifiers, so no quoting is needed.
func (r Report) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Header, ","))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// String renders the report as text.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	b.WriteString(stats.FormatTable(r.Header, r.Rows))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// profileParams builds the paper-testbed cluster params for a profile.
func profileParams(opt Options, prof func(int) osd.Config, alloc cpumodel.Allocator, noDelay, sustained bool) cluster.Params {
	p := cluster.DefaultParams()
	p.OSDConfig = prof
	p.Allocator = alloc
	p.ClientNoDelay = noDelay
	p.Sustained = sustained
	p.Seed = opt.Seed
	return p
}

func withJournal(prof func(int) osd.Config, journalMB int) func(int) osd.Config {
	if journalMB <= 0 {
		return prof
	}
	return func(id int) osd.Config {
		cfg := prof(id)
		cfg.JournalSize = int64(journalMB) << 20
		return cfg
	}
}

// runPoint runs one fleet on a fresh cluster and returns the result.
func runPoint(p cluster.Params, vms int, imageSize int64, spec workload.Spec, prefill bool) workload.Result {
	c := cluster.New(p)
	f := workload.VMFleet(c, vms, imageSize, spec)
	if prefill {
		var bds []workload.BlockDev
		for _, j := range f.Jobs {
			bds = append(bds, j.BD)
		}
		workload.Prefill(c.K, bds, spec.BlockSize, cluster.ObjectSize)
	}
	res := f.Run(c.K)
	noteSim(c.K)
	return res
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Fig1 reproduces Figure 1: stock Ceph on all-flash, 4K random write/read
// IOPS and latency versus client thread count. The paper's observations:
// write IOPS plateau (~16K) while latency blows up past 32 threads, and
// reads need high thread counts before IOPS rise.
func Fig1(opt Options) Report {
	rep := Report{
		Title:  "Figure 1: community Ceph on SSDs, 4K random I/O vs client threads",
		Header: []string{"threads", "wr-iops", "wr-lat(ms)", "rd-iops", "rd-lat(ms)"},
	}
	threads := []int{4, 8, 16, 32, 64, 128, 256}
	type wrRd struct{ wr, rd workload.Result }
	points := parallelPoints(opt.Workers, len(threads), func(i int) wrRd {
		spec := workload.Spec{
			BlockSize: 4096,
			IODepth:   threads[i] / 4,
			Runtime:   opt.runtime(),
			Ramp:      opt.ramp(),
			Seed:      opt.Seed,
		}
		if spec.IODepth < 1 {
			spec.IODepth = 1
		}
		p := profileParams(opt, osd.CommunityConfig, cpumodel.TCMalloc, false, true)
		spec.Pattern = workload.RandWrite
		wr := runPoint(p, 4, 512<<20, spec, false)
		spec.Pattern = workload.RandRead
		rd := runPoint(p, 4, 512<<20, spec, true)
		return wrRd{wr: wr, rd: rd}
	})
	for i, th := range threads {
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", th),
			f0(points[i].wr.IOPS), f1(points[i].wr.Lat.Mean),
			f0(points[i].rd.IOPS), f1(points[i].rd.Lat.Mean),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: write IOPS plateau near 16K with latency rising sharply past 32 threads;",
		"reads only reach high IOPS at 64 threads (batching-based design).")
	return rep
}

// fig3Stages pins Figure 3 to the paper's nine-stage view of the write
// path. The trace schema has since grown intermediate stamps (queued,
// prepared, commits-done) for the latency-breakdown report; including
// them here would reshuffle this figure's sorted rows and its benchgated
// metrics.
var fig3Stages = []int{
	osd.StageReceived,
	osd.StageDequeued,
	osd.StageSubmitted,
	osd.StageJournalWritten,
	osd.StageLocalCommit,
	osd.StageRepReceived,
	osd.StageRepJournaled,
	osd.StageReplicaCommit,
	osd.StageAcked,
}

// Fig3 reproduces Figure 3: the write-path latency breakdown of community
// Ceph under saturating 4K random writes, showing where PG-lock waiting
// accumulates (the paper: ~9 ms of a ~17 ms write attributable to the PG
// lock and single-finisher serialization).
func Fig3(opt Options) Report {
	prof := func(id int) osd.Config {
		cfg := osd.CommunityConfig(id)
		cfg.TraceSample = 5
		return cfg
	}
	p := profileParams(opt, prof, cpumodel.TCMalloc, false, true)
	c := cluster.New(p)
	vms, depth := opt.scaleLoad(40, 8)
	f := workload.VMFleet(c, vms, 512<<20, workload.Spec{
		Pattern:   workload.RandWrite,
		BlockSize: 4096,
		IODepth:   depth,
		Runtime:   opt.runtime(),
		Ramp:      opt.ramp(),
		Seed:      opt.Seed,
	})
	res := f.Run(c.K)
	noteSim(c.K)
	rep := Report{
		Title:  "Figure 3: community write-path latency breakdown (cumulative ms from receive)",
		Header: []string{"stage", "cum(ms)", "delta(ms)"},
	}
	// Use the cluster-wide mean of per-OSD stage means, weighted by count.
	stages := make([]float64, len(fig3Stages))
	var total float64
	for _, o := range c.OSDs() {
		n := float64(o.Traces().Count())
		if n == 0 {
			continue
		}
		for i, s := range fig3Stages {
			stages[i] += o.Traces().StageMeanMillis(s) * n
		}
		total += n
	}
	// Stages can interleave (replica-side events land while the primary's
	// completion queue is still backed up), so present them in time order.
	type stageRow struct {
		name string
		cum  float64
	}
	rows := make([]stageRow, 0, len(fig3Stages))
	for i, s := range fig3Stages {
		cum := 0.0
		if total > 0 {
			cum = stages[i] / total
		}
		rows = append(rows, stageRow{name: osd.StageNames[s], cum: cum})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cum < rows[j].cum })
	prev := 0.0
	for _, r := range rows {
		rep.Rows = append(rep.Rows, []string{r.name, f2(r.cum), f2(r.cum - prev)})
		prev = r.cum
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("workload: %s", res.String()),
		"paper: ~1ms messenger, ~3ms to submit (under PG lock), ~8.2ms journal stage,",
		"~1.1ms per completion hand-off; ~9ms of ~17ms total is PG-lock induced.")
	return rep
}

// Fig4 reproduces Figure 4: IOPS over time with logging on vs off, on a
// build with lock optimization and tuning applied but heavy transactions
// still in place. The paper: without logging the system holds high IOPS
// briefly (point A) and then fluctuates (point B) as the filestore queue
// backs up; logging lowers the whole curve.
func Fig4(opt Options) Report {
	mk := func(logMode oslog.Mode) func(int) osd.Config {
		return withJournal(func(id int) osd.Config {
			cfg := osd.AFCephConfig(id)                 // locks+tuning on ...
			cfg.FStore = osd.CommunityConfig(id).FStore // ... heavy tx still
			cfg.LogMode = logMode
			cfg.LogParams = oslog.CommunityParams()
			return cfg
		}, opt.JournalMB)
	}
	run := func(logMode oslog.Mode) workload.Result {
		p := profileParams(opt, mk(logMode), cpumodel.JEMalloc, true, true)
		vms, depth := opt.scaleLoad(40, 8)
		return runPoint(p, vms, 512<<20, workload.Spec{
			Pattern:   workload.RandWrite,
			BlockSize: 4096,
			IODepth:   depth,
			Runtime:   8 * opt.runtime(), // long window: fluctuation onset (point B)
			Ramp:      0,
			Seed:      opt.Seed,
		}, false)
	}
	modes := []oslog.Mode{oslog.Sync, oslog.Off}
	points := parallelPoints(opt.Workers, len(modes), func(i int) workload.Result {
		return run(modes[i])
	})
	withLog, noLog := points[0], points[1]
	rep := Report{
		Title:  "Figure 4: log vs no-log, 4K randwrite IOPS over time (locks+tuning, heavy tx)",
		Header: []string{"config", "early-iops(A)", "late-iops", "late-CV(B)"},
	}
	// Split the series: "A" is the initial high-throughput phase, "B" the
	// steady phase where filestore contention shows up as fluctuation.
	row := func(name string, ts stats.TimeSeries) []string {
		n := ts.Len()
		early, late := ts, ts
		if n >= 8 {
			early = stats.TimeSeries{T: ts.T[:n/4], V: ts.V[:n/4]}
			late = stats.TimeSeries{T: ts.T[n/2:], V: ts.V[n/2:]}
		}
		return []string{name, f0(early.Mean()), f0(late.Mean()), f2(late.CoefVariation())}
	}
	rep.Rows = append(rep.Rows,
		row("log", withLog.Series),
		row("no-log", noLog.Series),
	)
	withLog.Series.Name = "log"
	noLog.Series.Name = "no-log"
	rep.Series = []stats.TimeSeries{withLog.Series, noLog.Series}
	rep.Notes = append(rep.Notes,
		"paper: no-log starts high (A) then fluctuates (B) as filestore contention grows;",
		"log on caps the curve well below no-log.")
	return rep
}

// fig9Steps enumerates the cumulative optimization steps of Figure 9.
func fig9Steps() []struct {
	Name    string
	Prof    func(int) osd.Config
	Alloc   cpumodel.Allocator
	NoDelay bool
} {
	base := func(id int) osd.Config { return osd.CommunityConfig(id) }
	lockMin := func(id int) osd.Config {
		cfg := base(id)
		cfg.OptPendingQueue = true
		cfg.OptCompletionWorker = true
		cfg.OptFastAck = true
		return cfg
	}
	tuned := func(id int) osd.Config {
		cfg := lockMin(id)
		cfg.Throttles = osd.AFCephConfig(id).Throttles
		cfg.NumFilestoreWorkers = osd.AFCephConfig(id).NumFilestoreWorkers
		cfg.WakeupBatch = 1
		cfg.WakeupTimeout = 0
		return cfg
	}
	asyncLog := func(id int) osd.Config {
		cfg := tuned(id)
		cfg.LogMode = oslog.Async
		cfg.LogParams = oslog.AFCephParams()
		return cfg
	}
	lightTx := func(id int) osd.Config {
		cfg := asyncLog(id)
		cfg.FStore = osd.AFCephConfig(id).FStore
		return cfg
	}
	return []struct {
		Name    string
		Prof    func(int) osd.Config
		Alloc   cpumodel.Allocator
		NoDelay bool
	}{
		{"community", base, cpumodel.TCMalloc, false},
		{"+pg-lock-min", lockMin, cpumodel.TCMalloc, false},
		{"+throttle/tuning", tuned, cpumodel.JEMalloc, true},
		{"+nonblock-log", asyncLog, cpumodel.JEMalloc, true},
		{"+light-tx", lightTx, cpumodel.JEMalloc, true},
	}
}

// Fig9 reproduces Figure 9: stepwise IOPS improvement on clean SSDs as
// each optimization is stacked (the paper: >2x overall on clean state).
func Fig9(opt Options) Report {
	rep := Report{
		Title:  "Figure 9: stepwise optimization, clean SSDs, 4K randwrite",
		Header: []string{"config", "iops", "lat(ms)", "x-vs-base"},
	}
	var base float64
	vms, depth := opt.scaleLoad(20, 8)
	steps := fig9Steps()
	points := parallelPoints(opt.Workers, len(steps), func(i int) workload.Result {
		p := profileParams(opt, steps[i].Prof, steps[i].Alloc, steps[i].NoDelay, false)
		return runPoint(p, vms, 512<<20, workload.Spec{
			Pattern:   workload.RandWrite,
			BlockSize: 4096,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.ramp(),
			Seed:      opt.Seed,
		}, false)
	})
	for i, step := range steps {
		res := points[i]
		if base == 0 {
			base = res.IOPS
		}
		rep.Rows = append(rep.Rows, []string{
			step.Name, f0(res.IOPS), f1(res.Lat.Mean), f2(res.IOPS / base),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: each step adds throughput; total improvement more than 2x on clean SSDs.")
	return rep
}
