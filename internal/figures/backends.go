package figures

import (
	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/store"
	"repro/internal/workload"
)

// backendPanels are the workloads where the two backends' write paths
// differ most: small random writes (deferred WAL vs journal double-write),
// threshold-straddling 32K writes, large sequential writes (direct single
// write vs double-write), and a mixed pattern.
var backendPanels = []struct {
	Name    string
	Pattern workload.Pattern
	BS      int64
	ReadPct int
	Depth   int
}{
	{"4K-randwrite", workload.RandWrite, 4096, 0, 8},
	{"32K-randwrite", workload.RandWrite, 32768, 0, 8},
	{"seq-write", workload.SeqWrite, 1 << 20, 0, 4},
	{"4K-randrw70", workload.RandRW, 4096, 70, 8},
}

// runBackendPoint runs one fleet on a fresh cluster and returns both the
// workload result and the device traffic, which the write-amplification
// columns need.
func runBackendPoint(p cluster.Params, vms int, spec workload.Spec) (workload.Result, *cluster.Cluster) {
	c := cluster.New(p)
	f := workload.VMFleet(c, vms, 512<<20, spec)
	res := f.Run(c.K)
	noteSim(c.K)
	return res, c
}

func deviceWriteBytes(c *cluster.Cluster) (journal, data uint64) {
	for _, nv := range c.NVRAMs() {
		journal += nv.Stats().BytesWritten.Value()
	}
	for i := range c.OSDs() {
		data += c.DataDevice(i).Stats().BytesWritten.Value()
	}
	return journal, data
}

// Backends compares the journal+filestore backend against the direct-write
// (BlueStore-style) backend at matched load: throughput, latency, and the
// host-level write amplification — total device bytes (journal NVRAM +
// data arrays) per byte of replicated client write traffic. The direct
// backend eliminates the journal's full-payload double write: large writes
// go to the data device once with a metadata-only KV commit, and small
// writes ride a KV WAL on the data device instead of the journal ring.
// panels restricts the figure to the named panels (nil = all).
func Backends(opt Options, panels []string) Report {
	rep := Report{
		Title:  "backend comparison: journal+filestore vs direct-write (AFCeph tuning, sustained)",
		Header: []string{"workload", "backend", "iops", "lat(ms)", "journal-MB", "data-MB", "write-amp"},
	}
	want := map[string]bool{}
	for _, p := range panels {
		want[p] = true
	}
	backends := []string{store.BackendFileStore, store.BackendDirectStore}
	type bkCell struct {
		panel   int
		backend string
	}
	var cells []bkCell
	for pi, pn := range backendPanels {
		if len(want) > 0 && !want[pn.Name] {
			continue
		}
		for _, backend := range backends {
			cells = append(cells, bkCell{panel: pi, backend: backend})
		}
	}
	rows := parallelPoints(opt.Workers, len(cells), func(i int) []string {
		pn, backend := backendPanels[cells[i].panel], cells[i].backend
		vms, depth := opt.scaleLoad(20, pn.Depth)
		spec := workload.Spec{
			Pattern:   pn.Pattern,
			BlockSize: pn.BS,
			ReadPct:   pn.ReadPct,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.rampWrite(),
			Seed:      opt.Seed,
		}
		p := profileParams(opt, withJournal(osd.AFCephConfig, opt.JournalMB), cpumodel.JEMalloc, true, true)
		p.Backend = backend
		res, c := runBackendPoint(p, vms, spec)
		jbytes, dbytes := deviceWriteBytes(c)
		// Replicated client write bytes: every primary and replica write
		// op carries one BlockSize payload to its OSD.
		var logical uint64
		for _, o := range c.OSDs() {
			logical += (o.Metrics().WriteOps.Value() + o.Metrics().RepOps.Value()) * uint64(pn.BS)
		}
		amp := 0.0
		if logical > 0 {
			amp = float64(jbytes+dbytes) / float64(logical)
		}
		return []string{
			pn.Name, backend,
			f0(res.IOPS), f1(res.Lat.Mean),
			f1(float64(jbytes) / (1 << 20)), f1(float64(dbytes) / (1 << 20)),
			f2(amp),
		}
	})
	rep.Rows = append(rep.Rows, rows...)
	rep.Notes = append(rep.Notes,
		"write-amp = (journal NVRAM bytes + data-array bytes) / replicated client write bytes;",
		"the direct backend zeroes the journal column and drops large-write amplification toward 1x,",
		"at the cost of KV-WAL traffic on the data device for sub-threshold writes.")
	return rep
}
