package figures

import "repro/internal/sim"

// parallelPoints runs n independent figure points on the bounded worker
// pool and returns their results in index order. Every multi-point figure
// is a fan-out of mutually independent simulations — each point builds its
// own cluster and kernel, shares nothing with its siblings (the one piece
// of cross-point state, the simulated-time meter, is an atomic counter) —
// so the gather is a pure index-ordered collection and the assembled
// report is bit-identical for any worker count, including GOMAXPROCS=1.
// This is the figure-level analogue of the sharded kernel's sorted window
// barrier: parallelism changes wall-clock time, never the result.
func parallelPoints[T any](workers, n int, point func(i int) T) []T {
	out := make([]T, n)
	jobs := make([]func(), n)
	for i := range jobs {
		i := i
		jobs[i] = func() { out[i] = point(i) }
	}
	sim.RunParallel(workers, jobs)
	return out
}
