package figures

import (
	"strings"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/sim"
)

func TestOptionsScaling(t *testing.T) {
	opt := Options{Scale: 0.25, RuntimeSec: 2, RampSec: 0.8}
	if got := opt.scaleVMs(80); got != 20 {
		t.Fatalf("scaleVMs(80) = %d", got)
	}
	if got := opt.scaleVMs(1); got != 1 {
		t.Fatalf("scaleVMs(1) = %d, floor is 1", got)
	}
	if got := opt.runtime(); got != 500*sim.Millisecond {
		t.Fatalf("runtime = %v", got)
	}
	if got := opt.ramp(); got != 200*sim.Millisecond {
		t.Fatalf("ramp = %v", got)
	}
}

func TestScaleLoadPreservesInflight(t *testing.T) {
	opt := Options{Scale: 0.25}
	vms, depth := opt.scaleLoad(80, 8)
	if vms != 20 {
		t.Fatalf("vms = %d", vms)
	}
	if vms*depth != 80*8 {
		t.Fatalf("in-flight %d != %d", vms*depth, 80*8)
	}
	// Depth never shrinks below the nominal and is capped at 128.
	opt.Scale = 0.01
	_, depth = opt.scaleLoad(80, 8)
	if depth != 128 {
		t.Fatalf("depth cap = %d", depth)
	}
	opt.Scale = 1
	vms, depth = opt.scaleLoad(80, 8)
	if vms != 80 || depth != 8 {
		t.Fatalf("identity scaling broken: %d x %d", vms, depth)
	}
}

func TestRampWriteFloor(t *testing.T) {
	opt := Options{Scale: 0.1, RampSec: 0.6}
	if got := opt.rampWrite(); got != 800*sim.Millisecond {
		t.Fatalf("rampWrite floor = %v", got)
	}
	opt = Options{Scale: 1, RampSec: 2.0}
	if got := opt.rampWrite(); got != 2*sim.Second {
		t.Fatalf("rampWrite above floor = %v", got)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{
		Title:  "test figure",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"a note"},
	}
	s := rep.String()
	for _, want := range []string{"test figure", "a note", "1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
}

func TestWithJournalOverride(t *testing.T) {
	prof := withJournal(osd.CommunityConfig, 64)
	if got := prof(0).JournalSize; got != 64<<20 {
		t.Fatalf("journal = %d", got)
	}
	same := withJournal(osd.CommunityConfig, 0)
	if got := same(0).JournalSize; got != osd.CommunityConfig(0).JournalSize {
		t.Fatal("zero MB must keep the default")
	}
}

func TestFig9StepsCumulative(t *testing.T) {
	steps := fig9Steps()
	if len(steps) != 5 {
		t.Fatalf("steps = %d", len(steps))
	}
	// The final step must equal the full AFCeph profile in every paper
	// toggle.
	last := steps[len(steps)-1].Prof(0)
	want := osd.AFCephConfig(0)
	if last.OptPendingQueue != want.OptPendingQueue ||
		last.OptCompletionWorker != want.OptCompletionWorker ||
		last.OptFastAck != want.OptFastAck ||
		last.LogMode != want.LogMode ||
		last.FStore.BatchKVOps != want.FStore.BatchKVOps ||
		last.Throttles != want.Throttles ||
		last.NumFilestoreWorkers != want.NumFilestoreWorkers {
		t.Fatal("final fig9 step drifted from AFCephConfig")
	}
	// The baseline must be stock.
	base := steps[0].Prof(0)
	if base.OptPendingQueue || base.FStore.BatchKVOps {
		t.Fatal("baseline not stock")
	}
}

// TestFigureSmoke runs every figure at minuscule scale to catch harness
// regressions; shape assertions live in the benchmarks and EXPERIMENTS.md.
func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke is slow")
	}
	opt := Options{Scale: 0.05, RuntimeSec: 1, RampSec: 0.3, JournalMB: 32, Seed: 1}

	t.Run("fig3", func(t *testing.T) {
		rep := Fig3(opt)
		if len(rep.Rows) != len(fig3Stages) {
			t.Fatalf("rows = %d", len(rep.Rows))
		}
	})
	t.Run("breakdown", func(t *testing.T) {
		rep := LatencyBreakdown(opt)
		// 8 chain segments + end-to-end + the two async rows.
		if len(rep.Rows) != len(osd.WriteSpec.Segments)+3 {
			t.Fatalf("rows = %d", len(rep.Rows))
		}
	})
	t.Run("fig9", func(t *testing.T) {
		rep := Fig9(opt)
		if len(rep.Rows) != 5 {
			t.Fatalf("rows = %d", len(rep.Rows))
		}
	})
	t.Run("fig10", func(t *testing.T) {
		rep := Fig10(opt, []int{10}, []string{"4K-randwrite"})
		if len(rep.Rows) != 1 {
			t.Fatalf("rows = %d", len(rep.Rows))
		}
	})
	t.Run("fig12", func(t *testing.T) {
		rep := Fig12(opt, []int{2, 4})
		if len(rep.Rows) != 8 {
			t.Fatalf("rows = %d", len(rep.Rows))
		}
	})
	t.Run("loadpoint", func(t *testing.T) {
		res := LatencyVsLoadPoint(opt, osd.CommunityConfig, cpumodel.TCMalloc, false, 10)
		if res.Ops == 0 {
			t.Fatal("no ops")
		}
	})
}

func TestReportCSV(t *testing.T) {
	rep := Report{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
	}
	want := "a,b\n1,2\n3,4\n"
	if got := rep.CSV(); got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
