package figures

import (
	"sync/atomic" //afvet:allow determinism commutative wall-meter only: a sum of per-point clocks, never read by simulated state

	"repro/internal/sim"
)

// simNanos accumulates the virtual nanoseconds simulated by every figure
// point since the last TakeSimNanos. The benchmarks divide it by wall time
// to report the simulator's time-compression ratio (sim-wall-x), which the
// regression gate tracks alongside ns/op: a ratio drop means the kernel
// got slower per simulated second even if the figure shrank.
var simNanos atomic.Int64

// noteSim credits a finished point's kernel clock to the accumulator.
func noteSim(k *sim.Kernel) { simNanos.Add(int64(k.Now())) }

// noteSimNanos credits an externally run simulation (a scenario engine
// point reports its final kernel clock rather than the kernel itself).
func noteSimNanos(ns int64) { simNanos.Add(ns) }

// TakeSimNanos returns the accumulated simulated nanoseconds and resets
// the accumulator.
func TakeSimNanos() int64 { return simNanos.Swap(0) }
