package figures

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/store"
	"repro/internal/workload"
)

// ecvsrepPools are the two redundancy policies the figure compares at
// matched durability budgets: 3-way replication (tolerates 2 lost copies)
// and RS(4,2) erasure coding (tolerates 2 lost shards at half the space).
var ecvsrepPools = []struct {
	Name string
	Pool string
}{
	{"rep3", "rep3"},
	{"ec4+2", "ec4+2"},
}

// ECvsRep quantifies the redundancy-policy trade on both store backends:
// client throughput and latency for 4K random writes, the host-level write
// amplification per byte of *client* traffic (so the policy fan-out shows
// up directly: ~3x replicated payloads vs 6 quarter-size shards), the
// storage overhead, the CPU cost per thousand client ops (the parity
// encode tax), and the read latency when one OSD is failed out — replica
// reads fail over to another full copy while EC reads reconstruct from
// k of the surviving shards.
func ECvsRep(opt Options) Report {
	rep := Report{
		Title: "redundancy policy: 3x replication vs RS(4,2) erasure coding (AFCeph tuning)",
		Header: []string{"pool", "backend", "iops", "lat(ms)",
			"write-amp", "space", "cpu-ms/kop", "deg-lat(ms)"},
	}
	backends := []string{store.BackendFileStore, store.BackendDirectStore}
	type cell struct {
		pool    int
		backend string
	}
	var cells []cell
	for pi := range ecvsrepPools {
		for _, backend := range backends {
			cells = append(cells, cell{pool: pi, backend: backend})
		}
	}
	rows := parallelPoints(opt.Workers, len(cells), func(i int) []string {
		pool, backend := ecvsrepPools[cells[i].pool], cells[i].backend
		vms, depth := opt.scaleLoad(16, 8)
		mkParams := func() cluster.Params {
			p := profileParams(opt, withJournal(osd.AFCephConfig, opt.JournalMB), cpumodel.JEMalloc, true, true)
			p.Backend = backend
			p.Replicas = 3
			p.Pool = pool.Pool
			return p
		}

		// Write phase: sustained 4K random writes on a fresh cluster.
		wspec := workload.Spec{
			Pattern:   workload.RandWrite,
			BlockSize: 4096,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.rampWrite(),
			Seed:      opt.Seed,
		}
		wc := cluster.New(mkParams())
		wres := workload.VMFleet(wc, vms, 512<<20, wspec).Run(wc.K)
		noteSim(wc.K)
		jbytes, dbytes := deviceWriteBytes(wc)
		logical := float64(wres.Ops) * float64(wspec.BlockSize)
		amp := 0.0
		if logical > 0 {
			amp = float64(jbytes+dbytes) / logical
		}
		var busy uint64
		for _, n := range wc.Nodes() {
			busy += n.BusyNanos()
		}
		cpuPerKop := 0.0
		if wres.Ops > 0 {
			cpuPerKop = float64(busy) / 1e6 / float64(wres.Ops) * 1000
		}

		// Degraded-read phase: a fresh cluster is prefilled, one OSD is
		// failed out without recovery, and the fleet reads through the hole.
		rspec := wspec
		rspec.Pattern = workload.RandRead
		rspec.Ramp = opt.ramp()
		rc := cluster.New(mkParams())
		rf := workload.VMFleet(rc, vms, 512<<20, rspec)
		var bds []workload.BlockDev
		for _, j := range rf.Jobs {
			bds = append(bds, j.BD)
		}
		workload.Prefill(rc.K, bds, rspec.BlockSize, cluster.ObjectSize)
		rc.FailOSD(0)
		rres := rf.Run(rc.K)
		noteSim(rc.K)

		return []string{
			pool.Name, backend,
			f0(wres.IOPS), f2(wres.Lat.Mean),
			f2(amp), f2(wc.Policy().StorageOverhead()),
			f2(cpuPerKop), f2(rres.Lat.Mean),
		}
	})
	rep.Rows = append(rep.Rows, rows...)
	rep.Notes = append(rep.Notes,
		"write-amp = (journal NVRAM bytes + data-array bytes) / client write bytes, so the redundancy",
		fmt.Sprintf("fan-out is included: rep3 ships 3 full payloads, RS(4,2) ships %d quarter-size shards;", 6),
		"space is the policy's storage overhead (stored bytes per logical byte);",
		"cpu-ms/kop includes the RS(4,2) parity-encode charge on every write;",
		"deg-lat is mean read latency with one OSD failed out and not recovered — replica reads",
		"fail over to a surviving full copy, EC reads gather and reconstruct from k shards.")
	return rep
}
