package figures

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"runtime"
	"strings"
	"testing"
)

// reportHash collapses everything a figure emits — title, header, every
// cell, every note — into one digest, so "bit-identical figure output"
// is a single string comparison.
func reportHash(rep Report) string {
	h := sha256.New()
	h.Write([]byte(rep.Title))
	h.Write([]byte{0})
	h.Write([]byte(rep.CSV()))
	h.Write([]byte{0})
	h.Write([]byte(strings.Join(rep.Notes, "\n")))
	writeU64 := func(u uint64) {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range rep.Series {
		h.Write([]byte(s.Name))
		for _, ts := range s.T {
			writeU64(uint64(ts))
		}
		for _, v := range s.V {
			writeU64(math.Float64bits(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenFigures is every figure config the determinism gate covers, at a
// scale small enough to run each three times.
var goldenFigures = []struct {
	name string
	run  func(Options) Report
}{
	{"fig1", Fig1},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig9", Fig9},
	{"fig10", func(o Options) Report { return Fig10(o, []int{10}, []string{"4K-randwrite"}) }},
	{"fig11", Fig11},
	{"fig12", func(o Options) Report { return Fig12(o, []int{2, 4}) }},
	{"breakdown", LatencyBreakdown},
	{"backends", func(o Options) Report { return Backends(o, nil) }},
	{"scrub", Scrub},
}

// TestFigureDeterminism is the golden gate behind every benchmark
// comparison and EXPERIMENTS.md claim: a figure rendered twice from the
// same options hashes identically, and rendering with GOMAXPROCS=1 hashes
// identically too — the simulation must not observe host parallelism.
func TestFigureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every figure three times")
	}
	opt := Options{Scale: 0.04, RuntimeSec: 0.6, RampSec: 0.2, JournalMB: 32, Seed: 1}
	for _, fig := range goldenFigures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			first := reportHash(fig.run(opt))
			if again := reportHash(fig.run(opt)); again != first {
				t.Fatalf("same options diverged: %s then %s", first, again)
			}
			prev := runtime.GOMAXPROCS(1)
			serial := reportHash(fig.run(opt))
			runtime.GOMAXPROCS(prev)
			if serial != first {
				t.Fatalf("GOMAXPROCS=1 diverged: %s vs %s", serial, first)
			}
		})
	}
}
