package figures

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"runtime"
	"strings"
	"testing"
)

// reportHash collapses everything a figure emits — title, header, every
// cell, every note — into one digest, so "bit-identical figure output"
// is a single string comparison.
func reportHash(rep Report) string {
	h := sha256.New()
	h.Write([]byte(rep.Title))
	h.Write([]byte{0})
	h.Write([]byte(rep.CSV()))
	h.Write([]byte{0})
	h.Write([]byte(strings.Join(rep.Notes, "\n")))
	writeU64 := func(u uint64) {
		var buf [8]byte
		for i := range buf {
			buf[i] = byte(u >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range rep.Series {
		h.Write([]byte(s.Name))
		for _, ts := range s.T {
			writeU64(uint64(ts))
		}
		for _, v := range s.V {
			writeU64(math.Float64bits(v))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenFigures is every figure config the determinism gate covers, at a
// scale small enough to run each three times.
var goldenFigures = []struct {
	name string
	run  func(Options) Report
}{
	{"fig1", Fig1},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig9", Fig9},
	{"fig10", func(o Options) Report { return Fig10(o, []int{10}, []string{"4K-randwrite"}) }},
	{"fig11", Fig11},
	{"fig12", func(o Options) Report { return Fig12(o, []int{2, 4}) }},
	{"breakdown", LatencyBreakdown},
	{"backends", func(o Options) Report { return Backends(o, nil) }},
	{"scrub", Scrub},
	{"scenarios", Scenarios},
	{"ecvsrep", ECvsRep},
}

// TestFigureDeterminism is the golden gate behind every benchmark
// comparison and EXPERIMENTS.md claim: a figure rendered twice from the
// same options hashes identically, and rendering under deliberately
// different host parallelism — one point-pool worker, eight workers, and
// the whole runtime pinned to GOMAXPROCS=1 — hashes identically too. The
// simulation must not observe host parallelism in any form.
func TestFigureDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every figure five times")
	}
	opt := Options{Scale: 0.04, RuntimeSec: 0.6, RampSec: 0.2, JournalMB: 32, Seed: 1}
	for _, fig := range goldenFigures {
		fig := fig
		t.Run(fig.name, func(t *testing.T) {
			first := reportHash(fig.run(opt))
			if again := reportHash(fig.run(opt)); again != first {
				t.Fatalf("same options diverged: %s then %s", first, again)
			}
			for _, workers := range []int{1, 8} {
				wopt := opt
				wopt.Workers = workers
				if h := reportHash(fig.run(wopt)); h != first {
					t.Fatalf("%d point workers diverged: %s vs %s", workers, h, first)
				}
			}
			prev := runtime.GOMAXPROCS(1)
			serial := reportHash(fig.run(opt))
			runtime.GOMAXPROCS(prev)
			if serial != first {
				t.Fatalf("GOMAXPROCS=1 diverged: %s vs %s", serial, first)
			}
		})
	}
}

// TestParallelPointsDifferentialShort is the -short/-race slice of the
// differential harness: one multi-point figure at minuscule scale rendered
// with 1 and 8 point workers must hash identically. scripts/check.sh runs
// this package under -race -short, so the race detector watches concurrent
// whole-cluster simulations through this test on every tier-1 run.
func TestParallelPointsDifferentialShort(t *testing.T) {
	opt := Options{Scale: 0.02, RuntimeSec: 0.3, RampSec: 0.1, JournalMB: 16, Seed: 1}
	opt.Workers = 1
	first := reportHash(Fig9(opt))
	opt.Workers = 8
	if h := reportHash(Fig9(opt)); h != first {
		t.Fatalf("point-parallel Fig9 diverged: %s vs %s", h, first)
	}
}

// TestPerfDumpDeterminism extends the gate to the perf-dump JSON surface
// (the afbench/afsim -perf-dump hook): the full dump of a rendered
// cluster must be byte-identical across repeated runs and under
// GOMAXPROCS=1.
func TestPerfDumpDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the breakdown cluster three times")
	}
	opt := Options{Scale: 0.04, RuntimeSec: 0.6, RampSec: 0.2, JournalMB: 32, Seed: 1}
	_, first := LatencyBreakdownWithPerf(opt)
	if first == "" {
		t.Fatal("perf dump empty")
	}
	if _, again := LatencyBreakdownWithPerf(opt); again != first {
		t.Fatal("perf dump diverged across identical runs")
	}
	prev := runtime.GOMAXPROCS(1)
	_, serial := LatencyBreakdownWithPerf(opt)
	runtime.GOMAXPROCS(prev)
	if serial != first {
		t.Fatal("perf dump diverged under GOMAXPROCS=1")
	}
}
