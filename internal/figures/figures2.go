package figures

import (
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/sim"
	"repro/internal/solidfire"
	"repro/internal/workload"
)

// fig10Workloads are the six panels of Figure 10.
var fig10Workloads = []struct {
	Name    string
	Pattern workload.Pattern
	BS      int64
	Depth   int
}{
	{"4K-randwrite", workload.RandWrite, 4096, 8},
	{"32K-randwrite", workload.RandWrite, 32768, 8},
	{"seq-write", workload.SeqWrite, 1 << 20, 4},
	{"4K-randread", workload.RandRead, 4096, 8},
	{"32K-randread", workload.RandRead, 32768, 8},
	{"seq-read", workload.SeqRead, 1 << 20, 4},
}

// Fig10 reproduces Figure 10: community vs AFCeph across VM counts for all
// six workload panels (sustained state). The headline cells: 4K randwrite
// 22K IOPS / 58.2 ms (community, 80 VMs) vs 81K / 7.9 ms (AFCeph); ~4x at
// 32K; sequential parity; 4K randread ~2x under heavy load; AFCeph's 32K
// write dip at >=40 VMs when the journal ring fills.
func Fig10(opt Options, vmCounts []int, panels []string) Report {
	if len(vmCounts) == 0 {
		vmCounts = []int{10, 20, 40, 80}
	}
	rep := Report{
		Title:  "Figure 10: VM-fleet performance, community vs AFCeph (sustained)",
		Header: []string{"workload", "vms", "comm-iops", "comm-lat(ms)", "afc-iops", "afc-lat(ms)", "afc/comm"},
	}
	want := map[string]bool{}
	for _, p := range panels {
		want[p] = true
	}
	type f10Cell struct {
		wl      int
		vmsFull int
	}
	var cells []f10Cell
	for wi, wl := range fig10Workloads {
		if len(want) > 0 && !want[wl.Name] {
			continue
		}
		for _, vmsFull := range vmCounts {
			cells = append(cells, f10Cell{wl: wi, vmsFull: vmsFull})
		}
	}
	type f10Res struct{ comm, afc workload.Result }
	points := parallelPoints(opt.Workers, len(cells), func(i int) f10Res {
		wl, vmsFull := fig10Workloads[cells[i].wl], cells[i].vmsFull
		vms, depth := opt.scaleLoad(vmsFull, wl.Depth)
		ramp := opt.ramp()
		if wl.Pattern.IsWrite() {
			ramp = opt.rampWrite()
		}
		spec := workload.Spec{
			Pattern:   wl.Pattern,
			BlockSize: wl.BS,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      ramp,
			Seed:      opt.Seed,
		}
		prefill := !wl.Pattern.IsWrite()
		commP := profileParams(opt, withJournal(osd.CommunityConfig, opt.JournalMB), cpumodel.TCMalloc, false, true)
		comm := runPoint(commP, vms, 512<<20, spec, prefill)
		afcP := profileParams(opt, withJournal(osd.AFCephConfig, opt.JournalMB), cpumodel.JEMalloc, true, true)
		afc := runPoint(afcP, vms, 512<<20, spec, prefill)
		return f10Res{comm: comm, afc: afc}
	})
	for i, cell := range cells {
		comm, afc := points[i].comm, points[i].afc
		ratio := 0.0
		if comm.IOPS > 0 {
			ratio = afc.IOPS / comm.IOPS
		}
		rep.Rows = append(rep.Rows, []string{
			fig10Workloads[cell.wl].Name, fmt.Sprintf("%d", cell.vmsFull),
			f0(comm.IOPS), f1(comm.Lat.Mean),
			f0(afc.IOPS), f1(afc.Lat.Mean),
			f2(ratio),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper headline: 4K randwrite 22K/58.2ms (community) vs 81K/7.9ms (AFCeph) at 80 VMs;",
		"32K randwrite ~4x; sequential parity; 4K randread ~2x under heavy load;",
		fmt.Sprintf("journal ring scaled to %dMB so the >=40-VM fill-up dip is observable in-sim.", opt.JournalMB))
	return rep
}

// fig11Panels are the Figure 11 comparison workloads.
var fig11Panels = []struct {
	Name    string
	Pattern workload.Pattern
	BS      int64
	Depth   int
}{
	{"4K-randwrite", workload.RandWrite, 4096, 8},
	{"32K-randwrite", workload.RandWrite, 32768, 8},
	{"4K-randread", workload.RandRead, 4096, 8},
	{"32K-randread", workload.RandRead, 32768, 8},
	{"seq-write", workload.SeqWrite, 1 << 20, 4},
	{"seq-read", workload.SeqRead, 1 << 20, 4},
}

// solidfirePoint runs one workload on the SolidFire comparator.
func solidfirePoint(opt Options, pat workload.Pattern, bs int64, vms, depth int, ramp sim.Time) workload.Result {
	sf := solidfire.New(solidfire.DefaultParams())
	f := &workload.Fleet{Name: "solidfire"}
	for v := 0; v < vms; v++ {
		vol := sf.NewVolume(512 << 20)
		f.Jobs = append(f.Jobs, workload.Job{BD: vol, Spec: workload.Spec{
			Pattern:   pat,
			BlockSize: bs,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      ramp,
			Seed:      opt.Seed + uint64(v),
		}})
	}
	if !pat.IsWrite() {
		var bds []workload.BlockDev
		for _, j := range f.Jobs {
			bds = append(bds, j.BD)
		}
		workload.Prefill(sf.K, bds, bs, bs*64)
	}
	res := f.Run(sf.K)
	noteSim(sf.K)
	return res
}

// Fig11 reproduces Figure 11: SolidFire vs AFCeph vs community at matched
// load. Paper: 4K randwrite 78K (SolidFire) vs 71K/3.4ms (AFCeph) vs 3K
// (community at matched latency); AFCeph best at 32K; SolidFire collapses
// on sequential (3-4x behind both Cephs) and degrades on 32K reads.
func Fig11(opt Options) Report {
	rep := Report{
		Title:  "Figure 11: SolidFire vs AFCeph vs community (max performance)",
		Header: []string{"workload", "sf-iops", "sf-lat", "afc-iops", "afc-lat", "comm-iops", "comm-lat", "sf-MB/s", "afc-MB/s", "comm-MB/s"},
	}
	type f11Res struct{ sf, afc, comm workload.Result }
	points := parallelPoints(opt.Workers, len(fig11Panels), func(i int) f11Res {
		pn := fig11Panels[i]
		vms, depth := opt.scaleLoad(40, pn.Depth)
		ramp := opt.ramp()
		if pn.Pattern.IsWrite() {
			ramp = opt.rampWrite()
		}
		runtime := opt.runtime()
		if !pn.Pattern.IsRand() {
			// A 1 MiB op is 256 scattered chunks on the chunk-fragmenting
			// SolidFire — second-class latency under load. The window must
			// dwarf it or fast ops alone would be counted.
			runtime *= 4
			if min := 3 * sim.Second; runtime < min {
				runtime = min
			}
			if min := 1500 * sim.Millisecond; ramp < min {
				ramp = min
			}
		}
		spec := workload.Spec{
			Pattern:   pn.Pattern,
			BlockSize: pn.BS,
			IODepth:   depth,
			Runtime:   runtime,
			Ramp:      ramp,
			Seed:      opt.Seed,
		}
		prefill := !pn.Pattern.IsWrite()
		sf := solidfirePoint(opt, pn.Pattern, pn.BS, vms, depth, ramp)
		afcP := profileParams(opt, osd.AFCephConfig, cpumodel.JEMalloc, true, true)
		afc := runPoint(afcP, vms, 512<<20, spec, prefill)
		commP := profileParams(opt, osd.CommunityConfig, cpumodel.TCMalloc, false, true)
		comm := runPoint(commP, vms, 512<<20, spec, prefill)
		return f11Res{sf: sf, afc: afc, comm: comm}
	})
	for i, pn := range fig11Panels {
		sf, afc, comm := points[i].sf, points[i].afc, points[i].comm
		rep.Rows = append(rep.Rows, []string{
			pn.Name,
			f0(sf.IOPS), f1(sf.Lat.Mean),
			f0(afc.IOPS), f1(afc.Lat.Mean),
			f0(comm.IOPS), f1(comm.Lat.Mean),
			f0(sf.BWMBps), f0(afc.BWMBps), f0(comm.BWMBps),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: SolidFire ~78K vs AFCeph ~71K on 4K randwrite (comparable);",
		"AFCeph ahead at 32K; both Cephs 3-4x SolidFire on sequential.")
	return rep
}

// Fig12 reproduces Figure 12: AFCeph scale-out across 4/8/16 OSD nodes,
// clean state. All workloads scale near-linearly except 16-node random
// read, capped by the SimpleMessenger's per-connection CPU overhead.
func Fig12(opt Options, nodeCounts []int) Report {
	if len(nodeCounts) == 0 {
		nodeCounts = []int{4, 8, 16}
	}
	rep := Report{
		Title:  "Figure 12: AFCeph scale-out (clean state)",
		Header: []string{"workload", "nodes", "iops", "MB/s", "lat(ms)", "x-vs-4node"},
	}
	wls := []struct {
		Name    string
		Pattern workload.Pattern
		BS      int64
		Depth   int
	}{
		{"4K-randwrite", workload.RandWrite, 4096, 8},
		{"4K-randread", workload.RandRead, 4096, 8},
		{"seq-write", workload.SeqWrite, 1 << 20, 4},
		{"seq-read", workload.SeqRead, 1 << 20, 4},
	}
	points := parallelPoints(opt.Workers, len(wls)*len(nodeCounts), func(i int) workload.Result {
		wl, nodes := wls[i/len(nodeCounts)], nodeCounts[i%len(nodeCounts)]
		p := profileParams(opt, osd.AFCephConfig, cpumodel.JEMalloc, true, false)
		p.OSDNodes = nodes
		vms, depth := opt.scaleLoad(10*nodes, wl.Depth)
		spec := workload.Spec{
			Pattern:   wl.Pattern,
			BlockSize: wl.BS,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.ramp(),
			Seed:      opt.Seed,
		}
		return runPoint(p, vms, 512<<20, spec, !wl.Pattern.IsWrite())
	})
	for wi, wl := range wls {
		var base float64
		for ni, nodes := range nodeCounts {
			res := points[wi*len(nodeCounts)+ni]
			if base == 0 {
				base = res.IOPS
			}
			rep.Rows = append(rep.Rows, []string{
				wl.Name, fmt.Sprintf("%d", nodes),
				f0(res.IOPS), f0(res.BWMBps), f1(res.Lat.Mean), f2(res.IOPS / base),
			})
		}
	}
	rep.Notes = append(rep.Notes,
		"paper: near-linear scaling everywhere except 16-node random read,",
		"which is capped by SimpleMessenger per-connection CPU.")
	return rep
}

// LatencyVsLoad sweeps offered load for one profile — a supporting
// experiment used by EXPERIMENTS.md to locate each system's knee.
func LatencyVsLoad(opt Options, tuningName string, prof func(int) osd.Config, alloc cpumodel.Allocator, noDelay bool) Report {
	rep := Report{
		Title:  fmt.Sprintf("latency vs load (%s, 4K randwrite, sustained)", tuningName),
		Header: []string{"vms", "iops", "lat(ms)", "p99(ms)"},
	}
	loads := []int{5, 10, 20, 40, 80}
	points := parallelPoints(opt.Workers, len(loads), func(i int) workload.Result {
		vms, depth := opt.scaleLoad(loads[i], 8)
		p := profileParams(opt, prof, alloc, noDelay, true)
		return runPoint(p, vms, 512<<20, workload.Spec{
			Pattern:   workload.RandWrite,
			BlockSize: 4096,
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.ramp(),
			Seed:      opt.Seed,
		}, false)
	})
	for i, vmsFull := range loads {
		res := points[i]
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", vmsFull), f0(res.IOPS), f1(res.Lat.Mean), f1(res.Lat.P99),
		})
	}
	return rep
}

// DropIn reproduces the paper's motivating observation (§1): replacing
// HDDs with SSDs barely helps stock Ceph's random I/O ("the drop-in
// replacement strategy does not work well in reality"), while the software
// optimizations unlock the flash.
func DropIn(opt Options) Report {
	rep := Report{
		Title:  "drop-in replacement (§1): community on HDD vs SSD vs AFCeph on SSD",
		Header: []string{"config", "4K-randwrite-iops", "lat(ms)", "x-vs-hdd"},
	}
	vms, depth := opt.scaleLoad(40, 8)
	run := func(prof func(int) osd.Config, alloc cpumodel.Allocator, noDelay, hdd bool) workload.Result {
		profHDD := prof
		if hdd {
			// HDD-era filestore relies on page-cache writeback; the deep
			// writeback queue is what lets the disk elevator amortize seeks.
			profHDD = func(id int) osd.Config {
				cfg := prof(id)
				cfg.FStore.ApplyWriteback = true
				// HDD-era deployments kept the (much smaller) hot metadata
				// set in RAM; synchronous metadata seeks were rare.
				cfg.FStore.MetaMissProb = 0.15
				return cfg
			}
		}
		p := profileParams(opt, profHDD, alloc, noDelay, true)
		p.UseHDD = hdd
		runtime, ramp := opt.runtime(), opt.rampWrite()
		if hdd {
			// Seek-bound latencies are ~0.5s under this load; the window
			// must dwarf them.
			runtime *= 4
			if min := 4 * sim.Second; runtime < min {
				runtime = min
			}
			if min := 2 * sim.Second; ramp < min {
				ramp = min
			}
		}
		return runPoint(p, vms, 512<<20, workload.Spec{
			Pattern:   workload.RandWrite,
			BlockSize: 4096,
			IODepth:   depth,
			Runtime:   runtime,
			Ramp:      ramp,
			Seed:      opt.Seed,
		}, false)
	}
	configs := []struct {
		prof    func(int) osd.Config
		alloc   cpumodel.Allocator
		noDelay bool
		hdd     bool
	}{
		{osd.CommunityConfig, cpumodel.TCMalloc, false, true},
		{osd.CommunityConfig, cpumodel.TCMalloc, false, false},
		{osd.AFCephConfig, cpumodel.JEMalloc, true, false},
	}
	points := parallelPoints(opt.Workers, len(configs), func(i int) workload.Result {
		c := configs[i]
		return run(c.prof, c.alloc, c.noDelay, c.hdd)
	})
	hdd, ssd, afc := points[0], points[1], points[2]
	base := hdd.IOPS
	if base <= 0 {
		base = 1
	}
	rep.Rows = append(rep.Rows,
		[]string{"community-hdd", f0(hdd.IOPS), f1(hdd.Lat.Mean), f2(hdd.IOPS / base)},
		[]string{"community-ssd", f0(ssd.IOPS), f1(ssd.Lat.Mean), f2(ssd.IOPS / base)},
		[]string{"afceph-ssd", f0(afc.IOPS), f1(afc.Lat.Mean), f2(afc.IOPS / base)},
	)
	rep.Notes = append(rep.Notes,
		"paper §1: the SSD swap alone leaves random I/O far below device capability;",
		"the software changes, not the media, deliver the gain.")
	return rep
}

// MixedRW compares the profiles under a mixed random read/write workload
// (fio rwmixread) — the pattern where the SSD mixed read/write penalty that
// the light-weight transaction avoids (§3.4) hurts most.
func MixedRW(opt Options, readPcts []int) Report {
	if len(readPcts) == 0 {
		readPcts = []int{30, 50, 70}
	}
	rep := Report{
		Title:  "mixed random 4K read/write, community vs AFCeph (sustained)",
		Header: []string{"read%", "comm-iops", "comm-lat(ms)", "afc-iops", "afc-lat(ms)", "afc/comm"},
	}
	vms, depth := opt.scaleLoad(40, 8)
	type mixRes struct{ comm, afc workload.Result }
	points := parallelPoints(opt.Workers, len(readPcts), func(i int) mixRes {
		spec := workload.Spec{
			Pattern:   workload.RandRW,
			BlockSize: 4096,
			ReadPct:   readPcts[i],
			IODepth:   depth,
			Runtime:   opt.runtime(),
			Ramp:      opt.rampWrite(),
			Seed:      opt.Seed,
		}
		commP := profileParams(opt, osd.CommunityConfig, cpumodel.TCMalloc, false, true)
		comm := runPoint(commP, vms, 512<<20, spec, true)
		afcP := profileParams(opt, osd.AFCephConfig, cpumodel.JEMalloc, true, true)
		afc := runPoint(afcP, vms, 512<<20, spec, true)
		return mixRes{comm: comm, afc: afc}
	})
	for i, rp := range readPcts {
		comm, afc := points[i].comm, points[i].afc
		ratio := 0.0
		if comm.IOPS > 0 {
			ratio = afc.IOPS / comm.IOPS
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", rp),
			f0(comm.IOPS), f1(comm.Lat.Mean),
			f0(afc.IOPS), f1(afc.Lat.Mean),
			f2(ratio),
		})
	}
	rep.Notes = append(rep.Notes,
		"supporting experiment: §3.4's mixed read/write avoidance matters most here.")
	return rep
}

// LatencyVsLoadPoint runs one 4K-randwrite point at the given full-scale VM
// count and returns the raw result; the ablation benchmarks use it.
func LatencyVsLoadPoint(opt Options, prof func(int) osd.Config, alloc cpumodel.Allocator, noDelay bool, vmsFull int) workload.Result {
	vms, depth := opt.scaleLoad(vmsFull, 8)
	p := profileParams(opt, prof, alloc, noDelay, true)
	return runPoint(p, vms, 512<<20, workload.Spec{
		Pattern:   workload.RandWrite,
		BlockSize: 4096,
		IODepth:   depth,
		Runtime:   opt.runtime(),
		Ramp:      opt.rampWrite(),
		Seed:      opt.Seed,
	}, false)
}

// RenderSeries formats a report's time series as aligned columns of
// (seconds, value) pairs for plotting.
func RenderSeries(rep Report) string {
	var b []byte
	for _, ts := range rep.Series {
		b = append(b, fmt.Sprintf("# series %s\n", ts.Name)...)
		for i := range ts.T {
			b = append(b, fmt.Sprintf("%8.2f %10.0f\n", float64(ts.T[i])/float64(sim.Second), ts.V[i])...)
		}
	}
	return string(b)
}
