package scenario

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseCanonical(t *testing.T) {
	for _, name := range CanonNames {
		sc, err := Parse([]byte(Canon(name)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Name != name {
			t.Fatalf("%s: parsed name %q", name, sc.Name)
		}
		if len(sc.Tenants) == 0 {
			t.Fatalf("%s: no tenants", name)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	sc, err := Parse([]byte(`{
		"name": "d", "runtime_sec": 1,
		"cluster": {"nodes": 1, "osds_per_node": 2},
		"tenants": [{"name": "a", "clients": 1, "arrival": {"process": "poisson", "rate_ops_sec": 10}}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 1 {
		t.Fatalf("default seed = %d, want 1", sc.Seed)
	}
	r := resolveTenant(&sc.Tenants[0])
	if r.Class != "standard" || r.ImageMB != 64 || r.InFlight != 8 {
		t.Fatalf("tenant defaults = %q/%d/%d", r.Class, r.ImageMB, r.InFlight)
	}
	if len(r.sizes) != 1 || r.sizes[0].Bytes != 4096 {
		t.Fatalf("default sizes = %+v", r.sizes)
	}
}

func TestParseComments(t *testing.T) {
	in := `{
		// a line comment
		"name": "c", # a hash comment with "quotes"
		"runtime_sec": 1,
		"cluster": {"nodes": 1, "osds_per_node": 1},
		"tenants": [{"name": "a // not a comment", "clients": 1,
			"arrival": {"process": "poisson", "rate_ops_sec": 5}},]
	}`
	sc, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Tenants[0].Name != "a // not a comment" {
		t.Fatalf("comment stripping reached into a string: %q", sc.Tenants[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", ``, "unexpected end"},
		{"non-object", `[1]`, "top level"},
		{"trailing", `{"name": "x", "runtime_sec": 1, "cluster": {"nodes": 1, "osds_per_node": 1}, "tenants": [{"name": "a", "clients": 1, "arrival": {"process": "poisson", "rate_ops_sec": 5}}]} extra`, "trailing data"},
		{"unknown-top", `{"nmae": "x"}`, `unknown field "nmae"`},
		{"unknown-tenant", `{"name": "x", "runtime_sec": 1, "cluster": {"nodes": 1, "osds_per_node": 1}, "tenants": [{"name": "a", "clinets": 1}]}`, "tenants[0]"},
		{"dup-key", `{"name": "x", "name": "y"}`, "duplicate key"},
		{"bad-type", `{"name": 4}`, "must be a string"},
		{"no-cluster", `{"name": "x", "runtime_sec": 1, "tenants": []}`, "cluster section is required"},
		{"no-tenants", `{"name": "x", "runtime_sec": 1, "cluster": {"nodes": 1, "osds_per_node": 1}, "tenants": []}`, "at least one tenant"},
		{"bad-process", `{"name": "x", "runtime_sec": 1, "cluster": {"nodes": 1, "osds_per_node": 1}, "tenants": [{"name": "a", "clients": 1, "arrival": {"process": "pareto", "rate_ops_sec": 5}}]}`, "not poisson, gamma or weibull"},
		{"poisson-cv", `{"name": "x", "runtime_sec": 1, "cluster": {"nodes": 1, "osds_per_node": 1}, "tenants": [{"name": "a", "clients": 1, "arrival": {"process": "poisson", "rate_ops_sec": 5, "cv": 2}}]}`, "cv fixed at 1"},
		{"failure-needs-timeout", `{"name": "x", "runtime_sec": 1, "cluster": {"nodes": 1, "osds_per_node": 2}, "failure": {"osd": 0, "at_sec": 0.5, "recover_at_sec": 0.8}, "tenants": [{"name": "a", "clients": 1, "arrival": {"process": "poisson", "rate_ops_sec": 5}}]}`, "op_timeout_ms"},
		{"huge-number", `{"name": "x", "seed": 1e300}`, "must be an integer"},
		{"bad-escape", `{"name": "\q"}`, "invalid escape"},
		{"deep-nest", `{"a": ` + strings.Repeat(`[`, 100) + strings.Repeat(`]`, 100) + `}`, "nesting deeper"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.in))
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestEncodeFixedPoint: parse→encode→parse is a fixed point for every
// canonical scenario — the property the fuzz harness extends to the whole
// valid input space.
func TestEncodeFixedPoint(t *testing.T) {
	for _, name := range CanonNames {
		sc, err := Parse([]byte(Canon(name)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e1 := Encode(sc)
		sc2, err := Parse(e1)
		if err != nil {
			t.Fatalf("%s: reparse of canonical encoding: %v\n%s", name, err, e1)
		}
		e2 := Encode(sc2)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("%s: encode is not a fixed point:\n--- first\n%s\n--- second\n%s", name, e1, e2)
		}
	}
}

func TestEncodeEscaping(t *testing.T) {
	sc := &Scenario{
		Name: "weird \"name\"\twith\nescapes\x01", Seed: 7, RuntimeSec: 1,
		Cluster: ClusterSpec{Nodes: 1, OSDsPerNode: 1},
		Tenants: []TenantSpec{{Name: "t", Clients: 1, Arrival: ArrivalSpec{Process: ProcPoisson, RateOpsSec: 5}}},
	}
	e1 := Encode(sc)
	sc2, err := Parse(e1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, e1)
	}
	if sc2.Name != sc.Name {
		t.Fatalf("name round trip: %q != %q", sc2.Name, sc.Name)
	}
	if !bytes.Equal(e1, Encode(sc2)) {
		t.Fatal("escaped encode is not a fixed point")
	}
}
