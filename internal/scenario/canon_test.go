package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExampleFilesMatchCanon: the runnable files under examples/scenarios/
// are byte-for-byte the embedded canonical scenarios, so what users run
// with `afsim -scenario` is exactly what the golden figure and the
// differential determinism harness measured.
func TestExampleFilesMatchCanon(t *testing.T) {
	for _, name := range CanonNames {
		path := filepath.Join("..", "..", "examples", "scenarios", name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate from scenario.Canon)", name, err)
		}
		if string(data) != Canon(name) {
			t.Fatalf("%s: %s has drifted from the embedded canonical scenario", name, path)
		}
	}
}
