// Package scenario is the declarative multi-tenant workload engine: a
// JSON scenario file (hand-rolled, dependency-free decoder — see decode.go)
// describes N tenants × M clients with Poisson/Gamma/Weibull interarrival
// processes, size/read mixes, diurnal ramps and burst storms, plus SLO
// classes and per-tenant token-bucket admission limits. The engine compiles
// it into deterministic open-loop generators over a simulated cluster and
// reports per-tenant / per-SLO-class latency, throughput, admission
// decisions and a Jain fairness index.
//
// Everything is deterministic: the same scenario and seed produce
// bit-identical results under any host parallelism (the differential
// determinism tests enforce it), which is what makes admission-on vs
// admission-off comparisons of the same scenario meaningful.
package scenario

import (
	"fmt"
)

// Bounds keep fuzzed and hand-written scenarios inside what a laptop-sized
// simulation can actually run; Validate enforces them.
const (
	maxTenants    = 32
	maxClients    = 64
	maxInFlight   = 256
	maxNodes      = 16
	maxOSDsPer    = 8
	maxPGs        = 4096
	maxImageMB    = 4096
	maxSizeBytes  = 4 << 20 // one RBD object
	maxRateOpsSec = 1e6
	maxRuntimeSec = 60
	maxSeed       = 1 << 53 // exactly representable as a JSON number
)

// Scenario is one complete experiment description.
type Scenario struct {
	Name       string
	Seed       uint64
	RuntimeSec float64 // measured window (after ramp)
	RampSec    float64 // warm-up, excluded from measurement
	Cluster    ClusterSpec
	// Admission turns per-tenant token-bucket admission control on; the
	// limits themselves live on each tenant (Tenant.Admission).
	Admission bool
	Failure   *FailureSpec
	Tenants   []TenantSpec
}

// ClusterSpec shapes the simulated cluster under the tenants.
type ClusterSpec struct {
	Nodes       int
	OSDsPerNode int
	SSDsPerOSD  int // default 2
	PGs         int // default 256
	Replicas    int // default 2
	Profile     string
	Backend     string // "" (profile default) | "filestore" | "directstore"
	JournalMB   int    // default 64
	// Robustness knobs, required when Failure is set.
	OpTimeoutMs      float64
	HeartbeatMs      float64
	HeartbeatGraceMs float64
}

// TenantSpec is one tenant: a fleet of identical clients with an arrival
// process, an op mix, optional rate modulation and an optional admission
// limit.
type TenantSpec struct {
	Name    string
	Class   string // SLO class; default "standard"
	Clients int
	ImageMB int // per-client image; default 64
	// InFlight is the per-client service concurrency (worker slots draining
	// the arrival queue); default 8.
	InFlight  int
	Arrival   ArrivalSpec
	Mix       MixSpec
	Diurnal   *DiurnalSpec
	Burst     *BurstSpec
	Admission *ThrottleSpec
}

// Arrival process names.
const (
	ProcPoisson = "poisson"
	ProcGamma   = "gamma"
	ProcWeibull = "weibull"
)

// ArrivalSpec selects the interarrival process per client. RateOpsSec is
// the mean arrival rate of ONE client; CV is the coefficient of variation
// of the interarrival time (gamma/weibull only — poisson is fixed at 1).
type ArrivalSpec struct {
	Process    string
	RateOpsSec float64
	CV         float64 // default 1
}

// MixSpec is the op mix: read percentage, offset pattern, and a weighted
// size distribution.
type MixSpec struct {
	ReadPct int
	Pattern string // "rand" (default) | "seq"
	Sizes   []SizeWeight
}

// SizeWeight is one entry of the size distribution.
type SizeWeight struct {
	Bytes  int64
	Weight float64
}

// DiurnalSpec modulates the arrival rate sinusoidally:
// rate(t) = base · (1 + Amplitude·sin(2πt/Period)), t measured from the
// start of the run.
type DiurnalSpec struct {
	PeriodSec float64
	Amplitude float64 // in [0, 0.95]
}

// BurstSpec is a storm: between AtSec and AtSec+DurationSec (scenario
// time), the tenant's arrival rate is multiplied by Multiplier.
type BurstSpec struct {
	AtSec       float64
	DurationSec float64
	Multiplier  float64
}

// ThrottleSpec is a tenant's cluster-wide admission limit.
type ThrottleSpec struct {
	OpsPerSec float64
	Burst     float64 // tokens; 0 = OpsPerSec/10 default
}

// FailureSpec crashes one OSD mid-run and restarts+recovers it later —
// failover under load.
type FailureSpec struct {
	OSD          int
	AtSec        float64
	RecoverAtSec float64
}

// Validate checks the scenario and returns a descriptive error for the
// first violation found. It never panics: scenario files are user input,
// not model code.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if sc.Seed > maxSeed {
		return fmt.Errorf("scenario %s: seed %d exceeds 2^53 (not exactly representable in JSON)", sc.Name, sc.Seed)
	}
	if sc.RuntimeSec <= 0 || sc.RuntimeSec > maxRuntimeSec {
		return fmt.Errorf("scenario %s: runtime_sec %g out of (0, %d]", sc.Name, sc.RuntimeSec, maxRuntimeSec)
	}
	if sc.RampSec < 0 || sc.RampSec > maxRuntimeSec {
		return fmt.Errorf("scenario %s: ramp_sec %g out of [0, %d]", sc.Name, sc.RampSec, maxRuntimeSec)
	}
	if err := sc.Cluster.validate(sc.Name); err != nil {
		return err
	}
	if len(sc.Tenants) == 0 {
		return fmt.Errorf("scenario %s: at least one tenant is required", sc.Name)
	}
	if len(sc.Tenants) > maxTenants {
		return fmt.Errorf("scenario %s: %d tenants exceeds the %d-tenant bound", sc.Name, len(sc.Tenants), maxTenants)
	}
	seen := make(map[string]bool, len(sc.Tenants))
	for i := range sc.Tenants {
		t := &sc.Tenants[i]
		if err := t.validate(sc.Name); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("scenario %s: duplicate tenant %q", sc.Name, t.Name)
		}
		seen[t.Name] = true
	}
	if f := sc.Failure; f != nil {
		osds := sc.Cluster.Nodes * sc.Cluster.OSDsPerNode
		if f.OSD < 0 || f.OSD >= osds {
			return fmt.Errorf("scenario %s: failure.osd %d out of [0, %d)", sc.Name, f.OSD, osds)
		}
		if f.AtSec <= 0 || f.AtSec >= sc.RampSec+sc.RuntimeSec {
			return fmt.Errorf("scenario %s: failure.at_sec %g must fall inside the run", sc.Name, f.AtSec)
		}
		if f.RecoverAtSec <= f.AtSec {
			return fmt.Errorf("scenario %s: failure.recover_at_sec %g must follow at_sec %g", sc.Name, f.RecoverAtSec, f.AtSec)
		}
		if sc.Cluster.OpTimeoutMs <= 0 {
			return fmt.Errorf("scenario %s: failure requires cluster.op_timeout_ms > 0 (clients must retry around the crash)", sc.Name)
		}
		if sc.Cluster.HeartbeatMs <= 0 {
			return fmt.Errorf("scenario %s: failure requires cluster.heartbeat_ms > 0 (the crash must be detected)", sc.Name)
		}
	}
	return nil
}

func (c *ClusterSpec) validate(scn string) error {
	if c.Nodes < 1 || c.Nodes > maxNodes {
		return fmt.Errorf("scenario %s: cluster.nodes %d out of [1, %d]", scn, c.Nodes, maxNodes)
	}
	if c.OSDsPerNode < 1 || c.OSDsPerNode > maxOSDsPer {
		return fmt.Errorf("scenario %s: cluster.osds_per_node %d out of [1, %d]", scn, c.OSDsPerNode, maxOSDsPer)
	}
	if c.SSDsPerOSD < 0 || c.SSDsPerOSD > 8 {
		return fmt.Errorf("scenario %s: cluster.ssds_per_osd %d out of [0, 8]", scn, c.SSDsPerOSD)
	}
	if c.PGs < 0 || c.PGs > maxPGs {
		return fmt.Errorf("scenario %s: cluster.pgs %d out of [0, %d]", scn, c.PGs, maxPGs)
	}
	if c.Replicas < 0 || (c.Replicas > 0 && c.Replicas > c.Nodes*c.OSDsPerNode) {
		return fmt.Errorf("scenario %s: cluster.replicas %d exceeds the %d OSDs", scn, c.Replicas, c.Nodes*c.OSDsPerNode)
	}
	switch c.Profile {
	case "", "afceph", "community":
	default:
		return fmt.Errorf("scenario %s: cluster.profile %q is not afceph or community", scn, c.Profile)
	}
	switch c.Backend {
	case "", "filestore", "directstore":
	default:
		return fmt.Errorf("scenario %s: cluster.backend %q is not filestore or directstore", scn, c.Backend)
	}
	if c.JournalMB < 0 || c.JournalMB > 2048 {
		return fmt.Errorf("scenario %s: cluster.journal_mb %d out of [0, 2048]", scn, c.JournalMB)
	}
	if c.OpTimeoutMs < 0 || c.HeartbeatMs < 0 || c.HeartbeatGraceMs < 0 {
		return fmt.Errorf("scenario %s: cluster timeouts must be non-negative", scn)
	}
	return nil
}

func (t *TenantSpec) validate(scn string) error {
	if t.Name == "" {
		return fmt.Errorf("scenario %s: tenant name is required", scn)
	}
	if t.Clients < 1 || t.Clients > maxClients {
		return fmt.Errorf("scenario %s: tenant %s: clients %d out of [1, %d]", scn, t.Name, t.Clients, maxClients)
	}
	if t.ImageMB < 0 || t.ImageMB > maxImageMB {
		return fmt.Errorf("scenario %s: tenant %s: image_mb %d out of [0, %d]", scn, t.Name, t.ImageMB, maxImageMB)
	}
	if t.InFlight < 0 || t.InFlight > maxInFlight {
		return fmt.Errorf("scenario %s: tenant %s: in_flight %d out of [0, %d]", scn, t.Name, t.InFlight, maxInFlight)
	}
	a := &t.Arrival
	switch a.Process {
	case ProcPoisson, ProcGamma, ProcWeibull:
	case "":
		return fmt.Errorf("scenario %s: tenant %s: arrival.process is required (poisson, gamma or weibull)", scn, t.Name)
	default:
		return fmt.Errorf("scenario %s: tenant %s: arrival.process %q is not poisson, gamma or weibull", scn, t.Name, a.Process)
	}
	if a.RateOpsSec <= 0 || a.RateOpsSec > maxRateOpsSec {
		return fmt.Errorf("scenario %s: tenant %s: arrival.rate_ops_sec %g out of (0, %g]", scn, t.Name, a.RateOpsSec, float64(maxRateOpsSec))
	}
	if a.CV < 0 || a.CV > 10 {
		return fmt.Errorf("scenario %s: tenant %s: arrival.cv %g out of [0, 10]", scn, t.Name, a.CV)
	}
	if a.Process == ProcPoisson && a.CV != 0 && a.CV != 1 {
		return fmt.Errorf("scenario %s: tenant %s: poisson arrivals have cv fixed at 1 (got %g); use gamma or weibull to shape the cv", scn, t.Name, a.CV)
	}
	if t.Mix.ReadPct < 0 || t.Mix.ReadPct > 100 {
		return fmt.Errorf("scenario %s: tenant %s: mix.read_pct %d out of [0, 100]", scn, t.Name, t.Mix.ReadPct)
	}
	switch t.Mix.Pattern {
	case "", "rand", "seq":
	default:
		return fmt.Errorf("scenario %s: tenant %s: mix.pattern %q is not rand or seq", scn, t.Name, t.Mix.Pattern)
	}
	imageBytes := int64(t.ImageMB) << 20
	if imageBytes == 0 {
		imageBytes = 64 << 20
	}
	for _, s := range t.Mix.Sizes {
		if s.Bytes <= 0 || s.Bytes > maxSizeBytes {
			return fmt.Errorf("scenario %s: tenant %s: mix size %d out of (0, %d]", scn, t.Name, s.Bytes, int64(maxSizeBytes))
		}
		if s.Bytes > imageBytes {
			return fmt.Errorf("scenario %s: tenant %s: mix size %d exceeds the %d-byte image", scn, t.Name, s.Bytes, imageBytes)
		}
		if s.Weight <= 0 {
			return fmt.Errorf("scenario %s: tenant %s: mix size %d has non-positive weight %g", scn, t.Name, s.Bytes, s.Weight)
		}
	}
	if d := t.Diurnal; d != nil {
		if d.PeriodSec <= 0 {
			return fmt.Errorf("scenario %s: tenant %s: diurnal.period_sec %g must be positive", scn, t.Name, d.PeriodSec)
		}
		if d.Amplitude < 0 || d.Amplitude > 0.95 {
			return fmt.Errorf("scenario %s: tenant %s: diurnal.amplitude %g out of [0, 0.95]", scn, t.Name, d.Amplitude)
		}
	}
	if b := t.Burst; b != nil {
		if b.AtSec < 0 {
			return fmt.Errorf("scenario %s: tenant %s: burst.at_sec %g must be non-negative", scn, t.Name, b.AtSec)
		}
		if b.DurationSec <= 0 {
			return fmt.Errorf("scenario %s: tenant %s: burst.duration_sec %g must be positive", scn, t.Name, b.DurationSec)
		}
		if b.Multiplier <= 0 || b.Multiplier > 100 {
			return fmt.Errorf("scenario %s: tenant %s: burst.multiplier %g out of (0, 100]", scn, t.Name, b.Multiplier)
		}
	}
	if ad := t.Admission; ad != nil {
		if ad.OpsPerSec <= 0 || ad.OpsPerSec > maxRateOpsSec {
			return fmt.Errorf("scenario %s: tenant %s: admission.rate_ops_sec %g out of (0, %g]", scn, t.Name, ad.OpsPerSec, float64(maxRateOpsSec))
		}
		if ad.Burst < 0 {
			return fmt.Errorf("scenario %s: tenant %s: admission.burst %g must be non-negative", scn, t.Name, ad.Burst)
		}
	}
	return nil
}
