package scenario

import (
	"bytes"
	"testing"
)

// FuzzScenarioParse: arbitrary bytes must never panic the parser, invalid
// specs must come back as errors (Validate never panics on user input),
// and for anything that parses, parse→encode→parse must be a fixed point.
func FuzzScenarioParse(f *testing.F) {
	for _, name := range CanonNames {
		f.Add([]byte(Canon(name)))
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name": "x", "tenants": [{"arrival": {}}]}`))
	f.Add([]byte(`[1, 2, {"a": "bé😀"}]`))
	f.Add([]byte(`{"name": "x", "seed": -1, "runtime_sec": 1e999}`))
	f.Add([]byte("{\"name\": \"x\" // comment\n}"))
	f.Add([]byte(`{"a": [[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data) // must not panic
		if err != nil {
			return
		}
		e1 := Encode(sc)
		sc2, err := Parse(e1)
		if err != nil {
			t.Fatalf("canonical encoding failed to reparse: %v\n%s", err, e1)
		}
		e2 := Encode(sc2)
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixed point:\n--- first\n%s\n--- second\n%s", e1, e2)
		}
	})
}
