package scenario

// The four canonical scenarios. They are embedded here as the single source
// of truth; examples/scenarios/*.json must match byte for byte (a test
// enforces it) so the files users run are exactly the ones the golden
// figure and the differential determinism harness exercise.

// CanonNames lists the canonical scenarios in presentation order.
var CanonNames = []string{
	"steady-multi-tenant",
	"noisy-neighbor",
	"flash-crowd",
	"failover-under-load",
}

// Canon returns the embedded scenario text by name ("" when unknown).
func Canon(name string) string {
	switch name {
	case "steady-multi-tenant":
		return CanonSteady
	case "noisy-neighbor":
		return CanonNoisyNeighbor
	case "flash-crowd":
		return CanonFlashCrowd
	case "failover-under-load":
		return CanonFailover
	}
	return ""
}

// CanonSteady: three well-behaved tenants in distinct SLO classes, one per
// arrival process, comfortably under cluster capacity. The fairness and
// per-class breakdown baseline.
const CanonSteady = `// Three tenants in distinct SLO classes, each with a different arrival
// process, all comfortably inside cluster capacity. Baseline for the
// fairness index and the per-class latency breakdown.
{
  "name": "steady-multi-tenant",
  "seed": 1,
  "runtime_sec": 2,
  "ramp_sec": 0.4,
  "cluster": {"nodes": 2, "osds_per_node": 2, "ssds_per_osd": 2, "pgs": 256, "replicas": 2, "profile": "afceph", "journal_mb": 64},
  "tenants": [
    {
      "name": "gold-oltp",
      "slo_class": "gold",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "poisson", "rate_ops_sec": 900},
      "mix": {"read_pct": 70, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 1}]}
    },
    {
      "name": "silver-web",
      "slo_class": "silver",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "gamma", "rate_ops_sec": 700, "cv": 0.5},
      "mix": {"read_pct": 50, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 3}, {"bytes": 32768, "weight": 1}]}
    },
    {
      "name": "bronze-batch",
      "slo_class": "bronze",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "weibull", "rate_ops_sec": 500, "cv": 1.5},
      "mix": {"read_pct": 0, "pattern": "seq", "sizes": [{"bytes": 65536, "weight": 1}]}
    }
  ]
}
`

// CanonNoisyNeighbor: a steady gold tenant shares the cluster with a
// bursty bulk tenant offering far more load than its admission limit.
// With admission on, the noisy tenant is clipped at its token rate and the
// gold tenant's p99 is protected; with admission off, the noise wins.
const CanonNoisyNeighbor = `// A steady gold tenant shares the cluster with a bursty bulk tenant that
// offers several times its admission limit. Run with admission on and off
// to see the token bucket protect the gold tenant's p99.
{
  "name": "noisy-neighbor",
  "seed": 1,
  "runtime_sec": 2,
  "ramp_sec": 0.4,
  "cluster": {"nodes": 2, "osds_per_node": 2, "ssds_per_osd": 2, "pgs": 256, "replicas": 2, "profile": "afceph", "journal_mb": 64},
  "admission": true,
  "tenants": [
    {
      "name": "steady-gold",
      "slo_class": "gold",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "poisson", "rate_ops_sec": 1200},
      "mix": {"read_pct": 70, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 1}]}
    },
    {
      "name": "noisy-bulk",
      "slo_class": "bronze",
      "clients": 4,
      "image_mb": 64,
      "in_flight": 16,
      "arrival": {"process": "gamma", "rate_ops_sec": 6000, "cv": 2},
      "mix": {"read_pct": 0, "pattern": "rand", "sizes": [{"bytes": 32768, "weight": 1}]},
      "admission": {"rate_ops_sec": 4000, "burst": 400}
    }
  ]
}
`

// CanonFlashCrowd: a diurnal gold tenant plus a crowd tenant that storms at
// 12x its base rate mid-run; the crowd's admission limit caps the storm.
const CanonFlashCrowd = `// A diurnal gold tenant plus a crowd tenant that storms at 12x its base
// rate mid-run. The crowd's admission limit absorbs the spike; compare
// admission off to watch the storm take the gold tenant's p99 with it.
{
  "name": "flash-crowd",
  "seed": 1,
  "runtime_sec": 2.4,
  "ramp_sec": 0.4,
  "cluster": {"nodes": 2, "osds_per_node": 2, "ssds_per_osd": 2, "pgs": 256, "replicas": 2, "profile": "afceph", "journal_mb": 64},
  "admission": true,
  "tenants": [
    {
      "name": "steady-gold",
      "slo_class": "gold",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "poisson", "rate_ops_sec": 1000},
      "mix": {"read_pct": 70, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 1}]},
      "diurnal": {"period_sec": 2.4, "amplitude": 0.3}
    },
    {
      "name": "crowd",
      "slo_class": "silver",
      "clients": 4,
      "image_mb": 64,
      "in_flight": 16,
      "arrival": {"process": "weibull", "rate_ops_sec": 700, "cv": 1.8},
      "mix": {"read_pct": 80, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 1}]},
      "burst": {"at_sec": 1.2, "duration_sec": 0.7, "multiplier": 12},
      "admission": {"rate_ops_sec": 5000, "burst": 500}
    }
  ]
}
`

// CanonFailover: two tenants ride through an OSD crash and recovery with
// client retry and heartbeat detection enabled.
const CanonFailover = `// Two tenants ride through an OSD crash at 0.9s and its restart+recovery
// at 1.8s, with client op timeouts and heartbeat down-detection doing the
// failover. Latency includes the retry stalls around the crash.
{
  "name": "failover-under-load",
  "seed": 1,
  "runtime_sec": 2.5,
  "ramp_sec": 0.3,
  "cluster": {"nodes": 2, "osds_per_node": 2, "ssds_per_osd": 2, "pgs": 256, "replicas": 2, "profile": "afceph", "journal_mb": 64, "op_timeout_ms": 150, "heartbeat_ms": 50, "heartbeat_grace_ms": 200},
  "failure": {"osd": 1, "at_sec": 0.9, "recover_at_sec": 1.8},
  "tenants": [
    {
      "name": "gold-oltp",
      "slo_class": "gold",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "poisson", "rate_ops_sec": 800},
      "mix": {"read_pct": 60, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 1}]}
    },
    {
      "name": "silver-web",
      "slo_class": "silver",
      "clients": 2,
      "image_mb": 64,
      "in_flight": 8,
      "arrival": {"process": "gamma", "rate_ops_sec": 600, "cv": 0.8},
      "mix": {"read_pct": 50, "pattern": "rand", "sizes": [{"bytes": 4096, "weight": 1}, {"bytes": 16384, "weight": 1}]}
    }
  ]
}
`
