package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode/utf16"
	"unicode/utf8"
)

// Parse decodes a scenario file. The format is JSON plus two conveniences:
// `//` and `#` line comments (outside strings) and trailing commas in
// objects and arrays. The decoder is hand rolled and dependency free; it
// never panics on arbitrary input and reports unknown fields by path so a
// typo'd knob fails loudly instead of silently running the default.
func Parse(data []byte) (*Scenario, error) {
	p := &parser{b: stripComments(data)}
	v, err := p.parseValue(0)
	if err != nil {
		return nil, err
	}
	p.skipWS()
	if p.i != len(p.b) {
		return nil, fmt.Errorf("scenario: trailing data at byte %d", p.i)
	}
	o, ok := v.(*jobj)
	if !ok {
		return nil, fmt.Errorf("scenario: top level must be an object")
	}
	sc, err := fromJSON(o)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// stripComments blanks `//` and `#` comments to end of line, outside
// strings, preserving byte offsets so error positions stay meaningful.
func stripComments(data []byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	inStr, esc, inCmt := false, false, false
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case inCmt:
			if c == '\n' {
				inCmt = false
			} else {
				out[i] = ' '
			}
		case inStr:
			if esc {
				esc = false
			} else if c == '\\' {
				esc = true
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '#':
			inCmt = true
			out[i] = ' '
		case c == '/' && i+1 < len(out) && out[i+1] == '/':
			inCmt = true
			out[i] = ' '
		}
	}
	return out
}

// jobj is a parsed JSON object that remembers key order, so every walk over
// it (unknown-field reporting, re-encoding) is deterministic without
// ranging over the map.
type jobj struct {
	keys []string
	vals map[string]any
}

const maxDepth = 64

type parser struct {
	b []byte
	i int
}

func (p *parser) skipWS() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r', ',':
			// Commas are treated as whitespace between elements; the
			// element grammar below re-checks structure, and this is what
			// buys trailing-comma tolerance.
			p.i++
		default:
			return
		}
	}
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("scenario: byte %d: %s", p.i, fmt.Sprintf(format, args...))
}

func (p *parser) parseValue(depth int) (any, error) {
	if depth > maxDepth {
		return nil, p.errf("nesting deeper than %d levels", maxDepth)
	}
	p.skipWS()
	if p.i >= len(p.b) {
		return nil, p.errf("unexpected end of input")
	}
	switch c := p.b[p.i]; {
	case c == '{':
		return p.parseObject(depth)
	case c == '[':
		return p.parseArray(depth)
	case c == '"':
		return p.parseString()
	case c == 't':
		return p.parseLit("true", true)
	case c == 'f':
		return p.parseLit("false", false)
	case c == 'n':
		return p.parseLit("null", nil)
	case c == '-' || (c >= '0' && c <= '9'):
		return p.parseNumber()
	default:
		return nil, p.errf("unexpected character %q", c)
	}
}

func (p *parser) parseLit(lit string, v any) (any, error) {
	if p.i+len(lit) > len(p.b) || string(p.b[p.i:p.i+len(lit)]) != lit {
		return nil, p.errf("invalid literal")
	}
	p.i += len(lit)
	return v, nil
}

func (p *parser) parseObject(depth int) (any, error) {
	p.i++ // '{'
	o := &jobj{vals: make(map[string]any)}
	for {
		p.skipWS()
		if p.i >= len(p.b) {
			return nil, p.errf("unterminated object")
		}
		if p.b[p.i] == '}' {
			p.i++
			return o, nil
		}
		if p.b[p.i] != '"' {
			return nil, p.errf("object key must be a string")
		}
		k, err := p.parseString()
		if err != nil {
			return nil, err
		}
		p.skipWS()
		if p.i >= len(p.b) || p.b[p.i] != ':' {
			return nil, p.errf("expected ':' after key %q", k)
		}
		p.i++
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		if _, dup := o.vals[k]; dup {
			return nil, p.errf("duplicate key %q", k)
		}
		o.keys = append(o.keys, k)
		o.vals[k] = v
	}
}

func (p *parser) parseArray(depth int) (any, error) {
	p.i++ // '['
	var a []any
	for {
		p.skipWS()
		if p.i >= len(p.b) {
			return nil, p.errf("unterminated array")
		}
		if p.b[p.i] == ']' {
			p.i++
			return a, nil
		}
		v, err := p.parseValue(depth + 1)
		if err != nil {
			return nil, err
		}
		a = append(a, v)
	}
}

func (p *parser) parseString() (string, error) {
	p.i++ // '"'
	var sb strings.Builder
	for p.i < len(p.b) {
		c := p.b[p.i]
		switch {
		case c == '"':
			p.i++
			return sb.String(), nil
		case c == '\\':
			p.i++
			if p.i >= len(p.b) {
				return "", p.errf("unterminated escape")
			}
			switch e := p.b[p.i]; e {
			case '"', '\\', '/':
				sb.WriteByte(e)
			case 'b':
				sb.WriteByte('\b')
			case 'f':
				sb.WriteByte('\f')
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case 'u':
				r, err := p.parseHex4()
				if err != nil {
					return "", err
				}
				if utf16.IsSurrogate(r) {
					if p.i+2 < len(p.b) && p.b[p.i+1] == '\\' && p.b[p.i+2] == 'u' {
						p.i += 2
						r2, err := p.parseHex4()
						if err != nil {
							return "", err
						}
						r = utf16.DecodeRune(r, r2)
					} else {
						r = utf8.RuneError
					}
				}
				sb.WriteRune(r)
			default:
				return "", p.errf("invalid escape \\%c", e)
			}
			p.i++
		case c < 0x20:
			return "", p.errf("raw control character in string")
		default:
			sb.WriteByte(c)
			p.i++
		}
	}
	return "", p.errf("unterminated string")
}

func (p *parser) parseHex4() (rune, error) {
	if p.i+4 >= len(p.b) {
		return 0, p.errf("truncated \\u escape")
	}
	v, err := strconv.ParseUint(string(p.b[p.i+1:p.i+5]), 16, 32)
	if err != nil {
		return 0, p.errf("invalid \\u escape")
	}
	p.i += 4
	return rune(v), nil
}

func (p *parser) parseNumber() (any, error) {
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.i++
		} else {
			break
		}
	}
	f, err := strconv.ParseFloat(string(p.b[start:p.i]), 64)
	if err != nil || math.IsInf(f, 0) || math.IsNaN(f) {
		p.i = start
		return nil, p.errf("invalid number %q", string(p.b[start:p.i]))
	}
	return f, nil
}

// ---------------------------------------------------------------------------
// Typed extraction: jobj → Scenario, with unknown-field errors by path.

func checkKeys(o *jobj, path string, allowed ...string) error {
	for _, k := range o.keys {
		found := false
		for _, a := range allowed {
			if k == a {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("scenario: %s: unknown field %q", path, k)
		}
	}
	return nil
}

func getString(o *jobj, path, key string) (string, bool, error) {
	v, ok := o.vals[key]
	if !ok {
		return "", false, nil
	}
	s, ok := v.(string)
	if !ok {
		return "", false, fmt.Errorf("scenario: %s.%s must be a string", path, key)
	}
	return s, true, nil
}

func getNum(o *jobj, path, key string) (float64, bool, error) {
	v, ok := o.vals[key]
	if !ok {
		return 0, false, nil
	}
	f, ok := v.(float64)
	if !ok {
		return 0, false, fmt.Errorf("scenario: %s.%s must be a number", path, key)
	}
	return f, true, nil
}

func getInt(o *jobj, path, key string) (int64, bool, error) {
	f, ok, err := getNum(o, path, key)
	if err != nil || !ok {
		return 0, ok, err
	}
	if f != math.Trunc(f) || math.Abs(f) > maxSeed {
		return 0, false, fmt.Errorf("scenario: %s.%s must be an integer (got %g)", path, key, f)
	}
	return int64(f), true, nil
}

func getBool(o *jobj, path, key string) (bool, bool, error) {
	v, ok := o.vals[key]
	if !ok {
		return false, false, nil
	}
	b, ok := v.(bool)
	if !ok {
		return false, false, fmt.Errorf("scenario: %s.%s must be a bool", path, key)
	}
	return b, true, nil
}

func getObj(o *jobj, path, key string) (*jobj, bool, error) {
	v, ok := o.vals[key]
	if !ok {
		return nil, false, nil
	}
	c, ok := v.(*jobj)
	if !ok {
		return nil, false, fmt.Errorf("scenario: %s.%s must be an object", path, key)
	}
	return c, true, nil
}

func getArr(o *jobj, path, key string) ([]any, bool, error) {
	v, ok := o.vals[key]
	if !ok {
		return nil, false, nil
	}
	a, ok := v.([]any)
	if !ok {
		return nil, false, fmt.Errorf("scenario: %s.%s must be an array", path, key)
	}
	return a, true, nil
}

func fromJSON(o *jobj) (*Scenario, error) {
	const path = "scenario"
	if err := checkKeys(o, path, "name", "seed", "runtime_sec", "ramp_sec",
		"cluster", "admission", "failure", "tenants"); err != nil {
		return nil, err
	}
	sc := &Scenario{Seed: 1}
	var err error
	if sc.Name, _, err = getString(o, path, "name"); err != nil {
		return nil, err
	}
	if v, ok, err := getInt(o, path, "seed"); err != nil {
		return nil, err
	} else if ok {
		if v < 0 {
			return nil, fmt.Errorf("scenario: seed must be non-negative")
		}
		sc.Seed = uint64(v)
	}
	if sc.RuntimeSec, _, err = getNum(o, path, "runtime_sec"); err != nil {
		return nil, err
	}
	if sc.RampSec, _, err = getNum(o, path, "ramp_sec"); err != nil {
		return nil, err
	}
	co, ok, err := getObj(o, path, "cluster")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("scenario: cluster section is required")
	}
	if err := clusterFromJSON(co, &sc.Cluster); err != nil {
		return nil, err
	}
	if sc.Admission, _, err = getBool(o, path, "admission"); err != nil {
		return nil, err
	}
	if fo, ok, err := getObj(o, path, "failure"); err != nil {
		return nil, err
	} else if ok {
		sc.Failure = &FailureSpec{}
		if err := failureFromJSON(fo, sc.Failure); err != nil {
			return nil, err
		}
	}
	ta, ok, err := getArr(o, path, "tenants")
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("scenario: tenants section is required")
	}
	for i, tv := range ta {
		to, ok := tv.(*jobj)
		if !ok {
			return nil, fmt.Errorf("scenario: tenants[%d] must be an object", i)
		}
		var t TenantSpec
		if err := tenantFromJSON(to, i, &t); err != nil {
			return nil, err
		}
		sc.Tenants = append(sc.Tenants, t)
	}
	return sc, nil
}

func clusterFromJSON(o *jobj, c *ClusterSpec) error {
	const path = "cluster"
	if err := checkKeys(o, path, "nodes", "osds_per_node", "ssds_per_osd",
		"pgs", "replicas", "profile", "backend", "journal_mb",
		"op_timeout_ms", "heartbeat_ms", "heartbeat_grace_ms"); err != nil {
		return err
	}
	ints := []struct {
		key string
		dst *int
	}{
		{"nodes", &c.Nodes}, {"osds_per_node", &c.OSDsPerNode},
		{"ssds_per_osd", &c.SSDsPerOSD}, {"pgs", &c.PGs},
		{"replicas", &c.Replicas}, {"journal_mb", &c.JournalMB},
	}
	for _, f := range ints {
		if v, ok, err := getInt(o, path, f.key); err != nil {
			return err
		} else if ok {
			*f.dst = int(v)
		}
	}
	var err error
	if c.Profile, _, err = getString(o, path, "profile"); err != nil {
		return err
	}
	if c.Backend, _, err = getString(o, path, "backend"); err != nil {
		return err
	}
	if c.OpTimeoutMs, _, err = getNum(o, path, "op_timeout_ms"); err != nil {
		return err
	}
	if c.HeartbeatMs, _, err = getNum(o, path, "heartbeat_ms"); err != nil {
		return err
	}
	if c.HeartbeatGraceMs, _, err = getNum(o, path, "heartbeat_grace_ms"); err != nil {
		return err
	}
	return nil
}

func failureFromJSON(o *jobj, f *FailureSpec) error {
	const path = "failure"
	if err := checkKeys(o, path, "osd", "at_sec", "recover_at_sec"); err != nil {
		return err
	}
	if v, ok, err := getInt(o, path, "osd"); err != nil {
		return err
	} else if ok {
		f.OSD = int(v)
	}
	var err error
	if f.AtSec, _, err = getNum(o, path, "at_sec"); err != nil {
		return err
	}
	if f.RecoverAtSec, _, err = getNum(o, path, "recover_at_sec"); err != nil {
		return err
	}
	return nil
}

func tenantFromJSON(o *jobj, idx int, t *TenantSpec) error {
	path := fmt.Sprintf("tenants[%d]", idx)
	if err := checkKeys(o, path, "name", "slo_class", "clients", "image_mb",
		"in_flight", "arrival", "mix", "diurnal", "burst", "admission"); err != nil {
		return err
	}
	var err error
	if t.Name, _, err = getString(o, path, "name"); err != nil {
		return err
	}
	if t.Class, _, err = getString(o, path, "slo_class"); err != nil {
		return err
	}
	if v, ok, err := getInt(o, path, "clients"); err != nil {
		return err
	} else if ok {
		t.Clients = int(v)
	}
	if v, ok, err := getInt(o, path, "image_mb"); err != nil {
		return err
	} else if ok {
		t.ImageMB = int(v)
	}
	if v, ok, err := getInt(o, path, "in_flight"); err != nil {
		return err
	} else if ok {
		t.InFlight = int(v)
	}
	ao, ok, err := getObj(o, path, "arrival")
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("scenario: %s: arrival section is required", path)
	}
	apath := path + ".arrival"
	if err := checkKeys(ao, apath, "process", "rate_ops_sec", "cv"); err != nil {
		return err
	}
	if t.Arrival.Process, _, err = getString(ao, apath, "process"); err != nil {
		return err
	}
	if t.Arrival.RateOpsSec, _, err = getNum(ao, apath, "rate_ops_sec"); err != nil {
		return err
	}
	if t.Arrival.CV, _, err = getNum(ao, apath, "cv"); err != nil {
		return err
	}
	if mo, ok, err := getObj(o, path, "mix"); err != nil {
		return err
	} else if ok {
		if err := mixFromJSON(mo, path+".mix", &t.Mix); err != nil {
			return err
		}
	}
	if do, ok, err := getObj(o, path, "diurnal"); err != nil {
		return err
	} else if ok {
		dpath := path + ".diurnal"
		if err := checkKeys(do, dpath, "period_sec", "amplitude"); err != nil {
			return err
		}
		d := &DiurnalSpec{}
		if d.PeriodSec, _, err = getNum(do, dpath, "period_sec"); err != nil {
			return err
		}
		if d.Amplitude, _, err = getNum(do, dpath, "amplitude"); err != nil {
			return err
		}
		t.Diurnal = d
	}
	if bo, ok, err := getObj(o, path, "burst"); err != nil {
		return err
	} else if ok {
		bpath := path + ".burst"
		if err := checkKeys(bo, bpath, "at_sec", "duration_sec", "multiplier"); err != nil {
			return err
		}
		b := &BurstSpec{}
		if b.AtSec, _, err = getNum(bo, bpath, "at_sec"); err != nil {
			return err
		}
		if b.DurationSec, _, err = getNum(bo, bpath, "duration_sec"); err != nil {
			return err
		}
		if b.Multiplier, _, err = getNum(bo, bpath, "multiplier"); err != nil {
			return err
		}
		t.Burst = b
	}
	if ado, ok, err := getObj(o, path, "admission"); err != nil {
		return err
	} else if ok {
		adpath := path + ".admission"
		if err := checkKeys(ado, adpath, "rate_ops_sec", "burst"); err != nil {
			return err
		}
		ad := &ThrottleSpec{}
		if ad.OpsPerSec, _, err = getNum(ado, adpath, "rate_ops_sec"); err != nil {
			return err
		}
		if ad.Burst, _, err = getNum(ado, adpath, "burst"); err != nil {
			return err
		}
		t.Admission = ad
	}
	return nil
}

func mixFromJSON(o *jobj, path string, m *MixSpec) error {
	if err := checkKeys(o, path, "read_pct", "pattern", "sizes"); err != nil {
		return err
	}
	if v, ok, err := getInt(o, path, "read_pct"); err != nil {
		return err
	} else if ok {
		m.ReadPct = int(v)
	}
	var err error
	if m.Pattern, _, err = getString(o, path, "pattern"); err != nil {
		return err
	}
	sa, ok, err := getArr(o, path, "sizes")
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	for i, sv := range sa {
		so, ok := sv.(*jobj)
		if !ok {
			return fmt.Errorf("scenario: %s.sizes[%d] must be an object", path, i)
		}
		spath := fmt.Sprintf("%s.sizes[%d]", path, i)
		if err := checkKeys(so, spath, "bytes", "weight"); err != nil {
			return err
		}
		var sw SizeWeight
		if v, ok, err := getInt(so, spath, "bytes"); err != nil {
			return err
		} else if ok {
			sw.Bytes = v
		}
		if sw.Weight, _, err = getNum(so, spath, "weight"); err != nil {
			return err
		}
		if sw.Weight == 0 {
			sw.Weight = 1
		}
		m.Sizes = append(m.Sizes, sw)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Canonical encoder. Encode(Parse(Encode(sc))) == Encode(sc) for every valid
// scenario: fields are emitted in a fixed order, zero-valued optionals are
// omitted, and numbers use the shortest round-trippable form. The fuzz
// harness leans on this fixed point.

// Encode renders the scenario in canonical form.
func Encode(sc *Scenario) []byte {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  \"name\": %s,\n", quote(sc.Name))
	fmt.Fprintf(&b, "  \"seed\": %d,\n", sc.Seed)
	fmt.Fprintf(&b, "  \"runtime_sec\": %s,\n", num(sc.RuntimeSec))
	if sc.RampSec != 0 {
		fmt.Fprintf(&b, "  \"ramp_sec\": %s,\n", num(sc.RampSec))
	}
	encodeCluster(&b, &sc.Cluster)
	if sc.Admission {
		b.WriteString("  \"admission\": true,\n")
	}
	if f := sc.Failure; f != nil {
		fmt.Fprintf(&b, "  \"failure\": {\"osd\": %d, \"at_sec\": %s, \"recover_at_sec\": %s},\n",
			f.OSD, num(f.AtSec), num(f.RecoverAtSec))
	}
	b.WriteString("  \"tenants\": [\n")
	for i := range sc.Tenants {
		encodeTenant(&b, &sc.Tenants[i], i == len(sc.Tenants)-1)
	}
	b.WriteString("  ]\n}\n")
	return []byte(b.String())
}

func encodeCluster(b *strings.Builder, c *ClusterSpec) {
	b.WriteString("  \"cluster\": {")
	fmt.Fprintf(b, "\"nodes\": %d, \"osds_per_node\": %d", c.Nodes, c.OSDsPerNode)
	if c.SSDsPerOSD != 0 {
		fmt.Fprintf(b, ", \"ssds_per_osd\": %d", c.SSDsPerOSD)
	}
	if c.PGs != 0 {
		fmt.Fprintf(b, ", \"pgs\": %d", c.PGs)
	}
	if c.Replicas != 0 {
		fmt.Fprintf(b, ", \"replicas\": %d", c.Replicas)
	}
	if c.Profile != "" {
		fmt.Fprintf(b, ", \"profile\": %s", quote(c.Profile))
	}
	if c.Backend != "" {
		fmt.Fprintf(b, ", \"backend\": %s", quote(c.Backend))
	}
	if c.JournalMB != 0 {
		fmt.Fprintf(b, ", \"journal_mb\": %d", c.JournalMB)
	}
	if c.OpTimeoutMs != 0 {
		fmt.Fprintf(b, ", \"op_timeout_ms\": %s", num(c.OpTimeoutMs))
	}
	if c.HeartbeatMs != 0 {
		fmt.Fprintf(b, ", \"heartbeat_ms\": %s", num(c.HeartbeatMs))
	}
	if c.HeartbeatGraceMs != 0 {
		fmt.Fprintf(b, ", \"heartbeat_grace_ms\": %s", num(c.HeartbeatGraceMs))
	}
	b.WriteString("},\n")
}

func encodeTenant(b *strings.Builder, t *TenantSpec, last bool) {
	b.WriteString("    {\n")
	fmt.Fprintf(b, "      \"name\": %s,\n", quote(t.Name))
	if t.Class != "" {
		fmt.Fprintf(b, "      \"slo_class\": %s,\n", quote(t.Class))
	}
	fmt.Fprintf(b, "      \"clients\": %d,\n", t.Clients)
	if t.ImageMB != 0 {
		fmt.Fprintf(b, "      \"image_mb\": %d,\n", t.ImageMB)
	}
	if t.InFlight != 0 {
		fmt.Fprintf(b, "      \"in_flight\": %d,\n", t.InFlight)
	}
	fmt.Fprintf(b, "      \"arrival\": {\"process\": %s, \"rate_ops_sec\": %s", quote(t.Arrival.Process), num(t.Arrival.RateOpsSec))
	if t.Arrival.CV != 0 {
		fmt.Fprintf(b, ", \"cv\": %s", num(t.Arrival.CV))
	}
	b.WriteString("},\n")
	encodeMix(b, &t.Mix)
	if d := t.Diurnal; d != nil {
		fmt.Fprintf(b, "      \"diurnal\": {\"period_sec\": %s, \"amplitude\": %s},\n", num(d.PeriodSec), num(d.Amplitude))
	}
	if bu := t.Burst; bu != nil {
		fmt.Fprintf(b, "      \"burst\": {\"at_sec\": %s, \"duration_sec\": %s, \"multiplier\": %s},\n", num(bu.AtSec), num(bu.DurationSec), num(bu.Multiplier))
	}
	if ad := t.Admission; ad != nil {
		fmt.Fprintf(b, "      \"admission\": {\"rate_ops_sec\": %s", num(ad.OpsPerSec))
		if ad.Burst != 0 {
			fmt.Fprintf(b, ", \"burst\": %s", num(ad.Burst))
		}
		b.WriteString("},\n")
	}
	if last {
		b.WriteString("    }\n")
	} else {
		b.WriteString("    },\n")
	}
}

func encodeMix(b *strings.Builder, m *MixSpec) {
	if m.ReadPct == 0 && m.Pattern == "" && len(m.Sizes) == 0 {
		return
	}
	b.WriteString("      \"mix\": {")
	sep := ""
	if m.ReadPct != 0 {
		fmt.Fprintf(b, "\"read_pct\": %d", m.ReadPct)
		sep = ", "
	}
	if m.Pattern != "" {
		fmt.Fprintf(b, "%s\"pattern\": %s", sep, quote(m.Pattern))
		sep = ", "
	}
	if len(m.Sizes) != 0 {
		fmt.Fprintf(b, "%s\"sizes\": [", sep)
		for i, s := range m.Sizes {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "{\"bytes\": %d, \"weight\": %s}", s.Bytes, num(s.Weight))
		}
		b.WriteString("]")
	}
	b.WriteString("},\n")
}

func num(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}
