package scenario

import (
	"testing"
)

func mustRun(t *testing.T, name string, opt Options) *Result {
	t.Helper()
	sc, err := Parse([]byte(Canon(name)))
	if err != nil {
		t.Fatalf("%s: parse: %v", name, err)
	}
	res, err := Run(sc, opt)
	if err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	return res
}

// TestScenarioInvariants checks the conservation laws on every canonical
// scenario: offered == accepted + rejected at every level, per-tenant and
// per-SLO-class counters telescope exactly to the cluster totals, and with
// admission on (and no failover retries) the OSD-side decision counters
// account for every offered op exactly once.
func TestScenarioInvariants(t *testing.T) {
	names := CanonNames
	if testing.Short() {
		names = names[:2]
	}
	for _, name := range names {
		res := mustRun(t, name, Options{Scale: 0.15})
		if res.Offered == 0 {
			t.Fatalf("%s: no offered load", name)
		}
		if res.Offered != res.Accepted+res.Rejected {
			t.Fatalf("%s: offered %d != accepted %d + rejected %d", name, res.Offered, res.Accepted, res.Rejected)
		}
		var tOff, tAcc, tRej, tMeas uint64
		for _, tr := range res.Tenants {
			if tr.Offered != tr.Accepted+tr.Rejected {
				t.Fatalf("%s: tenant %s: offered %d != accepted %d + rejected %d", name, tr.Name, tr.Offered, tr.Accepted, tr.Rejected)
			}
			tOff += tr.Offered
			tAcc += tr.Accepted
			tRej += tr.Rejected
			tMeas += tr.Measured
		}
		var cOff, cAcc, cRej, cMeas uint64
		for _, cr := range res.Classes {
			if cr.Offered != cr.Accepted+cr.Rejected {
				t.Fatalf("%s: class %s: offered %d != accepted %d + rejected %d", name, cr.Class, cr.Offered, cr.Accepted, cr.Rejected)
			}
			cOff += cr.Offered
			cAcc += cr.Accepted
			cRej += cr.Rejected
			cMeas += cr.Measured
		}
		// The telescoping check: tenant sums, class sums and cluster totals
		// are three independently incremented counter sets that must agree
		// exactly (mirrors TestBreakdownTelescopes for the perf breakdown).
		if tOff != res.Offered || cOff != res.Offered ||
			tAcc != res.Accepted || cAcc != res.Accepted ||
			tRej != res.Rejected || cRej != res.Rejected ||
			tMeas != res.Measured || cMeas != res.Measured {
			t.Fatalf("%s: breakdown does not telescope: tenants(%d/%d/%d/%d) classes(%d/%d/%d/%d) total(%d/%d/%d/%d)",
				name, tOff, tAcc, tRej, tMeas, cOff, cAcc, cRej, cMeas,
				res.Offered, res.Accepted, res.Rejected, res.Measured)
		}
		if res.Fairness < 0 || res.Fairness > 1+1e-12 {
			t.Fatalf("%s: fairness %g out of [0, 1]", name, res.Fairness)
		}
		sc, _ := Parse([]byte(Canon(name)))
		if res.AdmissionOn && sc.Failure == nil {
			// Every offered op reaches exactly one messenger-seam decision.
			if res.OSDAccepted+res.OSDRejected != res.Offered {
				t.Fatalf("%s: OSD decisions %d+%d != offered %d", name, res.OSDAccepted, res.OSDRejected, res.Offered)
			}
			if res.OSDRejected != res.Rejected {
				t.Fatalf("%s: OSD rejected %d != client rejected %d", name, res.OSDRejected, res.Rejected)
			}
		}
		if !res.AdmissionOn && (res.Rejected != 0 || res.OSDAccepted != 0 || res.OSDRejected != 0) {
			t.Fatalf("%s: admission off but rejections recorded (%d/%d/%d)", name, res.Rejected, res.OSDAccepted, res.OSDRejected)
		}
	}
}

// TestScenarioDeterministicPerfDump: the same scenario and seed produce a
// byte-identical perf dump and fingerprint across runs.
func TestScenarioDeterministicPerfDump(t *testing.T) {
	opt := Options{Scale: 0.12, Perf: true}
	a := mustRun(t, "noisy-neighbor", opt)
	b := mustRun(t, "noisy-neighbor", opt)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.PerfJSON != b.PerfJSON {
		t.Fatal("perf dumps differ between identical runs")
	}
	if a.PerfJSON == "" {
		t.Fatal("perf dump empty with Perf on")
	}
	c := mustRun(t, "noisy-neighbor", Options{Scale: 0.12})
	if c.PerfJSON != "" {
		t.Fatal("perf dump collected without Perf")
	}
}

// TestAdmissionMessengerSeamConcurrency drives the token buckets from many
// concurrent client procs through the OSD messenger; run under -race (the
// check script does) it doubles as the admission data-race test.
func TestAdmissionMessengerSeamConcurrency(t *testing.T) {
	res := mustRun(t, "noisy-neighbor", Options{Scale: 0.15})
	if res.Rejected == 0 {
		t.Fatal("noisy-neighbor should reject some of the noisy tenant's load")
	}
	if res.Offered != res.Accepted+res.Rejected {
		t.Fatalf("offered %d != accepted %d + rejected %d", res.Offered, res.Accepted, res.Rejected)
	}
	for _, tr := range res.Tenants {
		if tr.Name == "steady-gold" && tr.Rejected != 0 {
			t.Fatalf("unthrottled tenant was rejected %d times", tr.Rejected)
		}
	}
}

// TestStarvationFloor: a hog tenant offers far more than the cluster wants
// to give it, and a small throttled tenant still drains at its configured
// token rate — the bucket is a floor as well as a ceiling.
func TestStarvationFloor(t *testing.T) {
	const floor = 300.0 // victim's admission rate, ops/s
	src := `{
	  "name": "starvation",
	  "seed": 3,
	  "runtime_sec": 1.2,
	  "ramp_sec": 0.2,
	  "cluster": {"nodes": 2, "osds_per_node": 2, "pgs": 128, "replicas": 2},
	  "admission": true,
	  "tenants": [
	    {"name": "hog", "clients": 4, "in_flight": 16,
	     "arrival": {"process": "gamma", "rate_ops_sec": 5000, "cv": 2},
	     "mix": {"read_pct": 0, "sizes": [{"bytes": 32768, "weight": 1}]},
	     "admission": {"rate_ops_sec": 6000, "burst": 600}},
	    {"name": "victim", "clients": 2, "in_flight": 8,
	     "arrival": {"process": "poisson", "rate_ops_sec": 600},
	     "mix": {"read_pct": 0, "sizes": [{"bytes": 4096, "weight": 1}]},
	     "admission": {"rate_ops_sec": 300, "burst": 60}}
	  ]
	}`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var victim TenantResult
	for _, tr := range res.Tenants {
		if tr.Name == "victim" {
			victim = tr
		}
	}
	if victim.Offered == 0 {
		t.Fatal("victim offered nothing")
	}
	// The victim offers ~1200 ops/s against a 300 ops/s limit over ~1.4s of
	// arrivals. It must neither be starved below its floor nor sneak past
	// the limit (burst + per-OSD rounding give the headroom).
	activeSec := sc.RampSec + sc.RuntimeSec
	want := floor * activeSec
	if got := float64(victim.Accepted); got < 0.5*want || got > 1.8*want+240 {
		t.Fatalf("victim accepted %g ops, want ~%g (floor %g ops/s over %gs)", got, want, floor, activeSec)
	}
	if victim.Rejected == 0 {
		t.Fatal("victim should have been clipped above its floor")
	}
}

// TestAdmissionProtectsSteadyTenant: in the noisy-neighbor and flash-crowd
// scenarios, turning admission on must measurably improve the steady gold
// tenant's p99 versus the same scenario with admission disabled.
func TestAdmissionProtectsSteadyTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison runs are long; skipped in -short")
	}
	for _, name := range []string{"noisy-neighbor", "flash-crowd"} {
		on := mustRun(t, name, Options{Scale: 0.3})
		off := mustRun(t, name, Options{Scale: 0.3, DisableAdmission: true})
		var pOn, pOff TenantResult
		for i := range on.Tenants {
			if on.Tenants[i].Name == "steady-gold" {
				pOn, pOff = on.Tenants[i], off.Tenants[i]
			}
		}
		if pOn.Measured == 0 || pOff.Measured == 0 {
			t.Fatalf("%s: steady tenant unmeasured", name)
		}
		if pOn.Lat.P99 >= pOff.Lat.P99 {
			t.Errorf("%s: admission did not protect steady p99: on %.2fms vs off %.2fms", name, pOn.Lat.P99, pOff.Lat.P99)
		}
		if on.Rejected == 0 {
			t.Errorf("%s: admission on rejected nothing", name)
		}
		if off.Rejected != 0 {
			t.Errorf("%s: admission off still rejected %d", name, off.Rejected)
		}
	}
}

// TestFailoverUnderLoad: the canonical failover scenario loses nothing —
// every offered op is eventually accepted through retries around the crash.
func TestFailoverUnderLoad(t *testing.T) {
	res := mustRun(t, "failover-under-load", Options{Scale: 0.2})
	if res.Offered == 0 || res.Offered != res.Accepted {
		t.Fatalf("failover lost ops: offered %d accepted %d rejected %d", res.Offered, res.Accepted, res.Rejected)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	sc := &Scenario{Name: "bad"}
	if _, err := Run(sc, Options{}); err == nil {
		t.Fatal("Run accepted an invalid scenario")
	}
}
