package scenario

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/osd"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Options tunes a scenario run without editing the scenario itself.
type Options struct {
	// Scale multiplies every duration in the scenario (runtime, ramp, burst
	// windows, diurnal period, failure times) so the same file runs as a
	// quick smoke test or a long experiment. <= 0 means 1.
	Scale float64
	// DisableAdmission runs the scenario with admission control forced off
	// (the control arm of the noisy-neighbor comparison).
	DisableAdmission bool
	// Perf collects the cluster perf dump (plus the scenario's own
	// per-tenant/per-class subsystems) into Result.PerfJSON.
	Perf bool
}

// TenantResult is one tenant's aggregate outcome.
type TenantResult struct {
	Name    string
	Class   string
	Clients int
	// Offered counts every generated arrival over the whole run; Accepted +
	// Rejected == Offered exactly once the run drains.
	Offered  uint64
	Accepted uint64
	Rejected uint64
	// Measured is the accepted ops whose arrival fell inside the measured
	// window; IOPS and Lat are computed over those.
	Measured uint64
	IOPS     float64
	Lat      stats.Snapshot // milliseconds, arrival→completion
}

// ClassResult aggregates every tenant of one SLO class. Class counters are
// incremented independently of tenant and cluster counters, and the
// breakdown telescopes: summing any column over classes reproduces the
// cluster total exactly.
type ClassResult struct {
	Class    string
	Offered  uint64
	Accepted uint64
	Rejected uint64
	Measured uint64
	IOPS     float64
	Lat      stats.Snapshot
}

// Result is a full scenario outcome.
type Result struct {
	Name        string
	Seed        uint64
	AdmissionOn bool
	RuntimeSec  float64 // measured window, after scaling
	Tenants     []TenantResult
	Classes     []ClassResult
	// Cluster totals (independent counters, not sums of the above).
	Offered  uint64
	Accepted uint64
	Rejected uint64
	Measured uint64
	IOPS     float64
	Lat      stats.Snapshot
	// OSD-side admission decisions at the messenger seam. Without failures
	// every offered op is decided exactly once, so OSDAccepted+OSDRejected
	// == Offered; client retries under failover can decide an op more than
	// once, making the OSD side >=.
	OSDAccepted uint64
	OSDRejected uint64
	// Fairness is the Jain index over per-tenant measured throughput.
	Fairness      float64
	SimulatedTime sim.Time
	PerfJSON      string
}

// agg is one measurement bucket (tenant, class or cluster).
type agg struct {
	offered, accepted, rejected, measured stats.Counter
	hist                                  *stats.Histogram
}

func newAgg() *agg { return &agg{hist: stats.NewHistogram()} }

// arrivalRec is one generated op, fully drawn at arrival time so the event
// content never depends on which worker slot services it.
type arrivalRec struct {
	at    sim.Time
	read  bool
	oid   string
	off   int64
	size  int64
	stamp uint64
}

// resolved fills a tenant's defaults.
type resolvedTenant struct {
	TenantSpec
	imageBytes int64
	sizes      []SizeWeight
	totalW     float64
}

func resolveTenant(t *TenantSpec) resolvedTenant {
	r := resolvedTenant{TenantSpec: *t}
	if r.Class == "" {
		r.Class = "standard"
	}
	if r.ImageMB == 0 {
		r.ImageMB = 64
	}
	if r.InFlight == 0 {
		r.InFlight = 8
	}
	if r.Mix.Pattern == "" {
		r.Mix.Pattern = "rand"
	}
	r.imageBytes = int64(r.ImageMB) << 20
	r.sizes = r.Mix.Sizes
	if len(r.sizes) == 0 {
		r.sizes = []SizeWeight{{Bytes: 4096, Weight: 1}}
	}
	for _, s := range r.sizes {
		r.totalW += s.Weight
	}
	return r
}

// buildParams maps the cluster section onto the simulator's testbed params.
func buildParams(sc *Scenario, opt Options) cluster.Params {
	cs := sc.Cluster
	p := cluster.DefaultParams()
	p.OSDNodes = cs.Nodes
	p.OSDsPerNode = cs.OSDsPerNode
	p.SSDsPerOSD = cs.SSDsPerOSD
	if p.SSDsPerOSD == 0 {
		p.SSDsPerOSD = 2
	}
	p.PGs = uint32(cs.PGs)
	if p.PGs == 0 {
		p.PGs = 256
	}
	p.Replicas = cs.Replicas
	if p.Replicas == 0 {
		p.Replicas = 2
	}
	journalMB := cs.JournalMB
	if journalMB == 0 {
		journalMB = 64
	}
	prof := osd.AFCephConfig
	p.Allocator = cpumodel.JEMalloc
	p.ClientNoDelay = true
	if cs.Profile == "community" {
		prof = osd.CommunityConfig
		p.Allocator = cpumodel.TCMalloc
		p.ClientNoDelay = false
	}
	p.OSDConfig = func(id int) osd.Config {
		cfg := prof(id)
		cfg.JournalSize = int64(journalMB) << 20
		return cfg
	}
	p.Backend = cs.Backend
	p.Seed = sc.Seed
	// Client/heartbeat timeouts are latency-domain knobs: they model real
	// configuration, so Options.Scale (a duration-domain convenience) does
	// not shrink them.
	p.ClientOpTimeout = sim.Time(cs.OpTimeoutMs * float64(sim.Millisecond))
	p.HeartbeatInterval = sim.Time(cs.HeartbeatMs * float64(sim.Millisecond))
	p.HeartbeatGrace = sim.Time(cs.HeartbeatGraceMs * float64(sim.Millisecond))
	if sc.Admission && !opt.DisableAdmission {
		var ac core.AdmissionConfig
		for i := range sc.Tenants {
			t := &sc.Tenants[i]
			if t.Admission != nil {
				ac.Tenants = append(ac.Tenants, core.TenantRate{
					Tenant:    t.Name,
					OpsPerSec: t.Admission.OpsPerSec,
					Burst:     t.Admission.Burst,
				})
			}
		}
		p.Admission = ac
	}
	return p
}

// Run executes the scenario and returns its Result. The run is fully
// deterministic in (scenario, Options): every random draw comes from
// per-client streams keyed on (seed, tenant index, client index), and all
// op content is drawn at arrival time, so neither worker scheduling nor
// host parallelism can reorder the stream.
func Run(sc *Scenario, opt Options) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	scale := opt.Scale
	if scale <= 0 {
		scale = 1
	}
	scaleTime := func(sec float64) sim.Time { return sim.Time(sec * scale * float64(sim.Second)) }
	runtime := scaleTime(sc.RuntimeSec)
	if runtime < 50*sim.Millisecond {
		runtime = 50 * sim.Millisecond
	}
	ramp := scaleTime(sc.RampSec)

	params := buildParams(sc, opt)
	c := cluster.New(params)
	k := c.K

	tenants := make([]resolvedTenant, len(sc.Tenants))
	for i := range sc.Tenants {
		tenants[i] = resolveTenant(&sc.Tenants[i])
	}

	// Prefill images of read-mixed tenants so reads hit existing objects.
	// This advances the simulated clock; the measured run starts after it.
	// The kernel is advanced in bounded slices rather than sim.Forever
	// because heartbeat loops (failover scenarios) never run dry.
	var prefill []*cluster.BlockDevice
	for ti := range tenants {
		t := &tenants[ti]
		if t.Mix.ReadPct <= 0 {
			continue
		}
		for ci := 0; ci < t.Clients; ci++ {
			bd := c.NewClient().OpenDevice(imageName(t.Name, ci), t.imageBytes)
			prefill = append(prefill, bd)
		}
	}
	if len(prefill) > 0 {
		done := sim.NewWaitGroup(k)
		for i, bd := range prefill {
			bd := bd
			done.Add(1)
			k.Go(fmt.Sprintf("scn.prefill.%d", i), func(p *sim.Proc) {
				for off := int64(0); off < bd.Size(); off += cluster.ObjectSize {
					bd.WriteAt(p, off, 4096, 1)
				}
				done.Done()
			})
		}
		filled := false
		k.Go("scn.prefill.wait", func(p *sim.Proc) { done.Wait(p); filled = true })
		for !filled {
			k.Run(k.Now() + 100*sim.Millisecond)
		}
	}

	start := k.Now()
	measureFrom := start + ramp
	end := measureFrom + runtime

	tAggs := make([]*agg, len(tenants))
	var classOrder []string
	cAggs := make(map[string]*agg)
	total := newAgg()
	for ti := range tenants {
		tAggs[ti] = newAgg()
		cls := tenants[ti].Class
		if _, ok := cAggs[cls]; !ok {
			classOrder = append(classOrder, cls)
			cAggs[cls] = newAgg()
		}
	}

	wg := sim.NewWaitGroup(k)
	for ti := range tenants {
		t := &tenants[ti]
		ta := tAggs[ti]
		ca := cAggs[t.Class]
		samp := newSampler(t.Arrival)
		mod := newRateMult(&t.TenantSpec, scale)
		for ci := 0; ci < t.Clients; ci++ {
			ti, ci := ti, ci
			cl := c.NewClientTenant(t.Name)
			r := rng.New(mixSeed(sc.Seed, ti, ci))
			q := sim.NewQueue[arrivalRec](k, fmt.Sprintf("scn.t%d.c%d", ti, ci), 0)
			gen := &opGen{t: t, r: r, base: fmt.Sprintf("rbd.%s.", imageName(t.Name, ci))}
			wg.Add(1)
			k.Go(fmt.Sprintf("scn.arrive.t%d.c%d", ti, ci), func(p *sim.Proc) {
				defer wg.Done()
				stamp := uint64(ti)<<48 | uint64(ci)<<32
				for {
					mult := mod.at((p.Now() - start).Seconds())
					p.Sleep(samp.next(r, mult))
					if p.Now() >= end {
						break
					}
					stamp++
					rec := gen.draw(p.Now(), stamp)
					ta.offered.Inc()
					ca.offered.Inc()
					total.offered.Inc()
					q.Push(p, rec)
				}
				q.Close()
			})
			for w := 0; w < t.InFlight; w++ {
				w := w
				wg.Add(1)
				k.Go(fmt.Sprintf("scn.work.t%d.c%d.%d", ti, ci, w), func(p *sim.Proc) {
					defer wg.Done()
					for {
						rec, ok := q.Pop(p)
						if !ok {
							return
						}
						var admitted bool
						if rec.read {
							_, _, admitted = cl.TryReadObject(p, rec.oid, rec.off, rec.size)
						} else {
							admitted = cl.TryWriteObject(p, rec.oid, rec.off, rec.size, rec.stamp)
						}
						measured := rec.at >= measureFrom && rec.at < end
						if admitted {
							ta.accepted.Inc()
							ca.accepted.Inc()
							total.accepted.Inc()
							if measured {
								ta.measured.Inc()
								ca.measured.Inc()
								total.measured.Inc()
								d := int64(p.Now() - rec.at)
								ta.hist.Record(d)
								ca.hist.Record(d)
								total.hist.Record(d)
							}
						} else {
							ta.rejected.Inc()
							ca.rejected.Inc()
							total.rejected.Inc()
						}
					}
				})
			}
		}
	}

	if f := sc.Failure; f != nil {
		at := scaleTime(f.AtSec)
		recoverAt := scaleTime(f.RecoverAtSec)
		k.Go("scn.failure", func(p *sim.Proc) {
			p.Sleep(at)
			c.CrashOSD(f.OSD)
			p.Sleep(recoverAt - at)
			c.RestartOSDIn(p, f.OSD)
			c.RecoverOSDIn(p, f.OSD)
		})
	}

	// Heartbeats run forever; stop them once the workload drains so the
	// kernel can run dry.
	k.Go("scn.drain", func(p *sim.Proc) {
		wg.Wait(p)
		if params.HeartbeatInterval > 0 {
			c.StopHeartbeats()
		}
	})
	k.Run(sim.Forever)

	res := &Result{
		Name:          sc.Name,
		Seed:          sc.Seed,
		AdmissionOn:   params.Admission.Enabled(),
		RuntimeSec:    runtime.Seconds(),
		SimulatedTime: k.Now(),
	}
	for ti := range tenants {
		t := &tenants[ti]
		a := tAggs[ti]
		res.Tenants = append(res.Tenants, TenantResult{
			Name:     t.Name,
			Class:    t.Class,
			Clients:  t.Clients,
			Offered:  a.offered.Value(),
			Accepted: a.accepted.Value(),
			Rejected: a.rejected.Value(),
			Measured: a.measured.Value(),
			IOPS:     float64(a.measured.Value()) / runtime.Seconds(),
			Lat:      a.hist.SnapshotMillis(),
		})
	}
	for _, cls := range classOrder {
		a := cAggs[cls]
		res.Classes = append(res.Classes, ClassResult{
			Class:    cls,
			Offered:  a.offered.Value(),
			Accepted: a.accepted.Value(),
			Rejected: a.rejected.Value(),
			Measured: a.measured.Value(),
			IOPS:     float64(a.measured.Value()) / runtime.Seconds(),
			Lat:      a.hist.SnapshotMillis(),
		})
	}
	res.Offered = total.offered.Value()
	res.Accepted = total.accepted.Value()
	res.Rejected = total.rejected.Value()
	res.Measured = total.measured.Value()
	res.IOPS = float64(res.Measured) / runtime.Seconds()
	res.Lat = total.hist.SnapshotMillis()
	res.OSDAccepted, res.OSDRejected = c.AdmissionTotals()
	shares := make([]float64, len(res.Tenants))
	for i, t := range res.Tenants {
		shares[i] = float64(t.Measured)
	}
	res.Fairness = stats.JainFairness(shares)

	if opt.Perf {
		reg := c.Perf()
		for ti := range tenants {
			s := reg.Sub("scenario.tenant." + tenants[ti].Name)
			a := tAggs[ti]
			s.Counter("offered", &a.offered)
			s.Counter("accepted", &a.accepted)
			s.Counter("rejected", &a.rejected)
			s.Counter("measured", &a.measured)
			s.Histogram("latency", a.hist)
		}
		for _, cls := range classOrder {
			s := reg.Sub("scenario.class." + cls)
			a := cAggs[cls]
			s.Counter("offered", &a.offered)
			s.Counter("accepted", &a.accepted)
			s.Counter("rejected", &a.rejected)
			s.Counter("measured", &a.measured)
			s.Histogram("latency", a.hist)
		}
		s := reg.Sub("scenario.total")
		s.Counter("offered", &total.offered)
		s.Counter("accepted", &total.accepted)
		s.Counter("rejected", &total.rejected)
		s.Counter("measured", &total.measured)
		s.Histogram("latency", total.hist)
		res.PerfJSON = reg.DumpJSON()
	}
	return res, nil
}

func imageName(tenant string, ci int) string {
	return fmt.Sprintf("%s.c%d", tenant, ci)
}

// mixSeed derives a per-client stream key with a splitmix64 finalizer so
// adjacent (tenant, client) pairs land far apart in seed space.
func mixSeed(seed uint64, ti, ci int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(ti*maxClients+ci+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// opGen draws op content (direction, size, offset → object) for one client.
// Draw order is fixed — size, direction, offset — so the stream is stable.
type opGen struct {
	t         *resolvedTenant
	r         *rng.Rand
	base      string // "rbd.<image>."
	names     []string
	seqCursor int64
}

func (g *opGen) draw(at sim.Time, stamp uint64) arrivalRec {
	t := g.t
	size := t.sizes[0].Bytes
	if len(t.sizes) > 1 {
		u := g.r.Float64() * t.totalW
		for _, s := range t.sizes {
			size = s.Bytes
			if u < s.Weight {
				break
			}
			u -= s.Weight
		}
	}
	read := false
	if t.Mix.ReadPct > 0 {
		read = g.r.Intn(100) < t.Mix.ReadPct
	}
	var off int64
	if t.Mix.Pattern == "seq" {
		if g.seqCursor+size > t.imageBytes {
			g.seqCursor = 0
		}
		off = g.seqCursor
		g.seqCursor += size
	} else {
		slots := (t.imageBytes-size)/4096 + 1
		off = g.r.Int63n(slots) * 4096
	}
	// Clamp within one 4 MB object so an op never splits (Validate caps
	// sizes at ObjectSize).
	if rem := off % cluster.ObjectSize; rem+size > cluster.ObjectSize {
		off -= rem + size - cluster.ObjectSize
	}
	idx := off / cluster.ObjectSize
	for int64(len(g.names)) <= idx {
		g.names = append(g.names, fmt.Sprintf("%s%d", g.base, len(g.names)))
	}
	return arrivalRec{at: at, read: read, oid: g.names[idx], off: off % cluster.ObjectSize, size: size, stamp: stamp}
}

// Fingerprint folds every counter and latency quantile into one 64-bit
// FNV-1a hash; the differential determinism tests compare fingerprints
// across host-parallelism settings.
func (r *Result) Fingerprint() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mixStr := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mixSnap := func(s stats.Snapshot) {
		mix(s.Count)
		mix(math.Float64bits(s.Mean))
		mix(math.Float64bits(s.P50))
		mix(math.Float64bits(s.P99))
		mix(math.Float64bits(s.Max))
	}
	mixStr(r.Name)
	mix(r.Seed)
	for _, t := range r.Tenants {
		mixStr(t.Name)
		mixStr(t.Class)
		mix(t.Offered)
		mix(t.Accepted)
		mix(t.Rejected)
		mix(t.Measured)
		mixSnap(t.Lat)
	}
	for _, c := range r.Classes {
		mixStr(c.Class)
		mix(c.Offered)
		mix(c.Accepted)
		mix(c.Rejected)
		mix(c.Measured)
		mixSnap(c.Lat)
	}
	mix(r.Offered)
	mix(r.Accepted)
	mix(r.Rejected)
	mix(r.Measured)
	mixSnap(r.Lat)
	mix(r.OSDAccepted)
	mix(r.OSDRejected)
	mix(math.Float64bits(r.Fairness))
	mix(uint64(r.SimulatedTime))
	return h
}

// Table renders the per-tenant and per-class breakdown as text.
func (r *Result) Table() string {
	header := []string{"tenant", "class", "offered", "accepted", "rejected", "iops", "p50(ms)", "p99(ms)"}
	var rows [][]string
	for _, t := range r.Tenants {
		rows = append(rows, []string{
			t.Name, t.Class,
			fmt.Sprintf("%d", t.Offered), fmt.Sprintf("%d", t.Accepted), fmt.Sprintf("%d", t.Rejected),
			fmt.Sprintf("%.0f", t.IOPS), fmt.Sprintf("%.2f", t.Lat.P50), fmt.Sprintf("%.2f", t.Lat.P99),
		})
	}
	for _, c := range r.Classes {
		rows = append(rows, []string{
			"class:" + c.Class, "",
			fmt.Sprintf("%d", c.Offered), fmt.Sprintf("%d", c.Accepted), fmt.Sprintf("%d", c.Rejected),
			fmt.Sprintf("%.0f", c.IOPS), fmt.Sprintf("%.2f", c.Lat.P50), fmt.Sprintf("%.2f", c.Lat.P99),
		})
	}
	rows = append(rows, []string{
		"TOTAL", "",
		fmt.Sprintf("%d", r.Offered), fmt.Sprintf("%d", r.Accepted), fmt.Sprintf("%d", r.Rejected),
		fmt.Sprintf("%.0f", r.IOPS), fmt.Sprintf("%.2f", r.Lat.P50), fmt.Sprintf("%.2f", r.Lat.P99),
	})
	out := fmt.Sprintf("== scenario %s (seed %d, admission %v) ==\n", r.Name, r.Seed, r.AdmissionOn)
	out += stats.FormatTable(header, rows)
	out += fmt.Sprintf("fairness(jain)=%.3f osd_admit=%d/%d sim_time=%.2fs\n",
		r.Fairness, r.OSDAccepted, r.OSDRejected, r.SimulatedTime.Seconds())
	return out
}
