package scenario

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
)

// TestSamplerMoments: over a long seeded run, each process hits its
// analytic interarrival mean (1/rate) and coefficient of variation within
// loose statistical bounds, and every sample is strictly positive.
func TestSamplerMoments(t *testing.T) {
	const n = 40000
	cases := []struct {
		name string
		spec ArrivalSpec
		cv   float64
	}{
		{"poisson", ArrivalSpec{Process: ProcPoisson, RateOpsSec: 1000}, 1},
		{"gamma-smooth", ArrivalSpec{Process: ProcGamma, RateOpsSec: 500, CV: 0.5}, 0.5},
		{"gamma-bursty", ArrivalSpec{Process: ProcGamma, RateOpsSec: 2000, CV: 2}, 2},
		{"weibull-smooth", ArrivalSpec{Process: ProcWeibull, RateOpsSec: 800, CV: 0.6}, 0.6},
		{"weibull-heavy", ArrivalSpec{Process: ProcWeibull, RateOpsSec: 1200, CV: 1.8}, 1.8},
	}
	for _, tc := range cases {
		s := newSampler(tc.spec)
		r := rng.New(42)
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			d := s.next(r, 1)
			if d <= 0 {
				t.Fatalf("%s: non-positive interarrival %d at draw %d", tc.name, d, i)
			}
			sec := d.Seconds()
			sum += sec
			sumSq += sec * sec
		}
		mean := sum / n
		wantMean := 1 / tc.spec.RateOpsSec
		if rel := math.Abs(mean-wantMean) / wantMean; rel > 0.06 {
			t.Errorf("%s: sample mean %.6g vs %.6g (rel err %.3f)", tc.name, mean, wantMean, rel)
		}
		variance := sumSq/n - mean*mean
		cv := math.Sqrt(variance) / mean
		if rel := math.Abs(cv-tc.cv) / tc.cv; rel > 0.12 {
			t.Errorf("%s: sample cv %.4g vs %.4g (rel err %.3f)", tc.name, cv, tc.cv, rel)
		}
	}
}

// TestSamplerDeterministic: the same seed yields a bit-identical event
// sequence, and a different seed yields a different one.
func TestSamplerDeterministic(t *testing.T) {
	for _, spec := range []ArrivalSpec{
		{Process: ProcPoisson, RateOpsSec: 750},
		{Process: ProcGamma, RateOpsSec: 750, CV: 1.5},
		{Process: ProcWeibull, RateOpsSec: 750, CV: 0.7},
	} {
		s := newSampler(spec)
		draw := func(seed uint64) []sim.Time {
			r := rng.New(seed)
			out := make([]sim.Time, 500)
			for i := range out {
				// Alternate multipliers to cover the modulated path too.
				mult := 1.0
				if i%3 == 1 {
					mult = 2.5
				}
				out[i] = s.next(r, mult)
			}
			return out
		}
		a, b, c := draw(7), draw(7), draw(8)
		differs := false
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at draw %d: %d vs %d", spec.Process, i, a[i], b[i])
			}
			if a[i] != c[i] {
				differs = true
			}
		}
		if !differs {
			t.Fatalf("%s: different seeds produced identical sequences", spec.Process)
		}
	}
}

// TestWeibullShapeForCV: the bisection inverts the analytic CV(k) curve.
func TestWeibullShapeForCV(t *testing.T) {
	for _, cv := range []float64{0.1, 0.3, 0.6, 1, 1.5, 2, 4, 8} {
		k := weibullShapeForCV(cv)
		g1 := math.Gamma(1 + 1/k)
		got := math.Sqrt(math.Gamma(1+2/k)/(g1*g1) - 1)
		if math.Abs(got-cv)/cv > 1e-6 {
			t.Errorf("cv %g: shape %g gives analytic cv %g", cv, k, got)
		}
	}
	// cv = 1 is the exponential special case: shape 1, scale = mean.
	if k := weibullShapeForCV(1); math.Abs(k-1) > 1e-6 {
		t.Errorf("cv 1: shape %g, want 1", k)
	}
}

// TestRateMult: the modulation windows are exact and clamped.
func TestRateMult(t *testing.T) {
	ten := TenantSpec{
		Diurnal: &DiurnalSpec{PeriodSec: 4, Amplitude: 0.5},
		Burst:   &BurstSpec{AtSec: 1, DurationSec: 0.5, Multiplier: 10},
	}
	m := newRateMult(&ten, 1)
	if got := m.at(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("t=0: %g, want 1 (sin(0)=0)", got)
	}
	if got := m.at(1.25); got < 5 {
		t.Fatalf("inside burst: %g, want >= 5", got)
	}
	if got := m.at(1.6); got > 2 {
		t.Fatalf("after burst: %g, want diurnal only", got)
	}
	// Scale contracts both windows.
	ms := newRateMult(&ten, 0.1)
	if got := ms.at(0.125); got < 5 {
		t.Fatalf("scaled burst window: %g, want >= 5", got)
	}
	// The clamp keeps the multiplier positive even at deep diurnal troughs
	// with amplitude close to 1.
	deep := TenantSpec{Diurnal: &DiurnalSpec{PeriodSec: 1, Amplitude: 0.95}}
	dm := newRateMult(&deep, 1)
	if got := dm.at(0.75); got < 0.05 {
		t.Fatalf("trough multiplier %g under clamp", got)
	}
}
