package scenario

import (
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
)

// sampler draws interarrival times for one client. The mean interarrival
// is 1/rate seconds; the process shapes the coefficient of variation:
//
//	poisson  — exponential interarrivals, CV = 1 (memoryless baseline)
//	gamma    — CV c via shape k = 1/c²: c < 1 smooths (paced clients),
//	           c > 1 clumps (bursty clients)
//	weibull  — CV c via the shape solved from
//	           c² = Γ(1+2/k)/Γ(1+1/k)² − 1; heavy right tail for c > 1
//
// All draws come from the client's private xoshiro stream, so the event
// sequence depends only on (seed, tenant index, client index) — never on
// host scheduling.
type sampler struct {
	process string
	mean    float64 // seconds
	shape   float64
	scale   float64
}

func newSampler(a ArrivalSpec) sampler {
	s := sampler{process: a.Process, mean: 1 / a.RateOpsSec}
	cv := a.CV
	if cv == 0 {
		cv = 1
	}
	switch a.Process {
	case ProcGamma:
		s.shape = 1 / (cv * cv)
		s.scale = s.mean / s.shape
	case ProcWeibull:
		s.shape = weibullShapeForCV(cv)
		s.scale = s.mean / math.Gamma(1+1/s.shape)
	}
	return s
}

// weibullShapeForCV inverts CV²(k) = Γ(1+2/k)/Γ(1+1/k)² − 1 by bisection.
// CV is strictly decreasing in k on (0, ∞), so the bracket [0.08, 60]
// (CV ≈ 66 down to CV ≈ 0.02) covers every CV Validate admits.
func weibullShapeForCV(cv float64) float64 {
	target := cv * cv
	lo, hi := 0.08, 60.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		g1 := math.Gamma(1 + 1/mid)
		c2 := math.Gamma(1+2/mid)/(g1*g1) - 1
		if c2 > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// next draws one interarrival at the given rate multiplier (diurnal ×
// burst). Samples are clamped strictly positive — the simulator needs
// time to advance — and the multiplier divides the interarrival, which
// modulates the instantaneous rate without a thinning step (thinning
// would consume a schedule-dependent number of random draws).
func (s sampler) next(r *rng.Rand, mult float64) sim.Time {
	var sec float64
	switch s.process {
	case ProcGamma:
		sec = r.Gamma(s.shape, s.scale)
	case ProcWeibull:
		sec = r.Weibull(s.shape, s.scale)
	default: // poisson
		sec = r.Exp(s.mean)
	}
	if mult < 0.05 {
		mult = 0.05
	}
	sec /= mult
	d := sim.Time(sec * float64(sim.Second))
	if d < 1 {
		d = 1
	}
	return d
}

// rateMult is the deterministic rate modulation at scenario time t (seconds
// from run start): the diurnal sinusoid times the burst multiplier when t
// falls inside the storm window. Both windows are pre-scaled by the engine.
type rateMult struct {
	diurnalPeriod float64 // seconds; 0 = off
	diurnalAmp    float64
	burstAt       float64 // seconds; burst off when burstDur == 0
	burstDur      float64
	burstMult     float64
}

func newRateMult(t *TenantSpec, scale float64) rateMult {
	var m rateMult
	if d := t.Diurnal; d != nil {
		m.diurnalPeriod = d.PeriodSec * scale
		m.diurnalAmp = d.Amplitude
	}
	if b := t.Burst; b != nil {
		m.burstAt = b.AtSec * scale
		m.burstDur = b.DurationSec * scale
		m.burstMult = b.Multiplier
	}
	return m
}

func (m rateMult) at(tSec float64) float64 {
	mult := 1.0
	if m.diurnalPeriod > 0 {
		mult *= 1 + m.diurnalAmp*math.Sin(2*math.Pi*tSec/m.diurnalPeriod)
	}
	if m.burstDur > 0 && tSec >= m.burstAt && tSec < m.burstAt+m.burstDur {
		mult *= m.burstMult
	}
	if mult < 0.05 {
		mult = 0.05
	}
	return mult
}
