// Package rng provides small, fast, deterministic pseudo-random number
// generators and distribution samplers for the simulator.
//
// The simulator cannot use math/rand's global state: every component needs
// its own seeded stream so that adding a component does not perturb the
// random sequence seen by the others (which would break golden tests and
// A/B comparisons between profiles).
package rng

import "math"

// splitMix64 advances the SplitMix64 state and returns the next value.
// It is used both as a seed expander and as a standalone generator.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is invalid; use New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64 (so any seed,
// including 0, yields a well-mixed state).
func New(seed uint64) *Rand {
	var r Rand
	st := seed
	for i := range r.s {
		r.s[i] = splitMix64(&st)
	}
	return &r
}

// Fork derives an independent child generator. Components should Fork the
// parent stream once at construction time.
func (r *Rand) Fork() *Rand {
	return New(r.Uint64() ^ 0xa3cc1b5d36f2aa9d)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed sample with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normally distributed sample (Box–Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns exp(Normal(mu, sigma)); useful for heavy-ish service
// time noise that never goes negative.
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Gamma returns a Gamma(shape, scale) sample (shape > 0, scale > 0) via
// Marsaglia–Tsang squeeze-rejection; shape < 1 uses the boost
// Gamma(shape+1)·U^(1/shape). Gamma interarrivals model burstier-than-
// Poisson (shape < 1) or smoother-than-Poisson (shape > 1) tenant traffic.
func (r *Rand) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma needs shape > 0 and scale > 0")
	}
	if shape < 1 {
		u := r.Float64()
		if u < 1e-300 {
			u = 1e-300
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal(0, 1)
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u < 1e-300 {
			u = 1e-300
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Weibull returns a Weibull(shape, scale) sample (shape > 0, scale > 0) by
// inversion: scale·(-ln(1-U))^(1/shape). Shape < 1 gives heavy-tailed
// interarrivals (flash-crowd-like clumping), shape > 1 near-periodic ones.
func (r *Rand) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull needs shape > 0 and scale > 0")
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}

// Pareto returns a Pareto(xm, alpha) sample (alpha > 0), used for rare
// large stalls such as SSD GC pauses.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return xm / math.Pow(1-u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf samples from a bounded Zipf distribution over [0, n) with skew s>1,
// using rejection-inversion (Hörmann). For s very close to 1 accuracy is
// adequate for workload-skew purposes.
type Zipf struct {
	r                 *Rand
	n                 float64
	s                 float64
	oneMinusS         float64
	hIntegralX1       float64
	hIntegralNumElems float64
}

// NewZipf creates a Zipf sampler over [0, n) with exponent s > 1.
func NewZipf(r *Rand, s float64, n uint64) *Zipf {
	if s <= 1 || n == 0 {
		panic("rng: NewZipf needs s > 1 and n > 0")
	}
	z := &Zipf{r: r, n: float64(n), s: s, oneMinusS: 1 - s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralNumElems = z.hIntegral(z.n + 0.5)
	return z
}

func (z *Zipf) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2(z.oneMinusS*logX) * logX
}

func (z *Zipf) h(x float64) float64 {
	return math.Exp(-z.s * math.Log(x))
}

func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x/2*(1+x/3*(1+x/4))
}

func (z *Zipf) hIntegralInverse(x float64) float64 {
	t := x * z.oneMinusS
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x/2*(1-2*x/3*(1-3*x/4))
}

// Next returns the next Zipf sample in [0, n).
func (z *Zipf) Next() uint64 {
	for {
		u := z.hIntegralNumElems + z.r.Float64()*(z.hIntegralX1-z.hIntegralNumElems)
		x := z.hIntegralInverse(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		} else if k > z.n {
			k = z.n
		}
		if k-x <= 0.5 || u >= z.hIntegral(k+0.5)-z.h(k) {
			return uint64(k) - 1
		}
	}
}
