package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// Child stream should differ from continuing parent stream.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("fork mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRangeProperty(t *testing.T) {
	r := New(5)
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63nRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Int63n(1 << 40)
		if v < 0 || v >= 1<<40 {
			t.Fatalf("out of range: %d", v)
		}
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}

func TestUniformMean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v", mean)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(5.0)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-5.0) > 0.1 {
		t.Fatalf("exp mean = %v, want ~5", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(19)
	sum, sumSq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v", math.Sqrt(variance))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(23)
	for i := 0; i < 10000; i++ {
		if r.LogNormal(0, 0.5) <= 0 {
			t.Fatal("non-positive lognormal")
		}
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(29)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 3.0)
		if v < 2.0 {
			t.Fatalf("pareto sample %v below xm", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(31)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 1.2, 1000)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("zipf sample %d out of range", v)
		}
		counts[v]++
	}
	// Rank 0 must be sampled much more often than rank 500.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewZipf(New(1), 1.0, 10)
}
