#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
#
#   fmt        gofmt -l must be clean
#   lint       static checks: go vet plus afvet, the project's own
#              multichecker (determinism, lockorder, poolsafe, errcheck,
#              logpath — see DESIGN.md §9)
#   build      every package compiles
#   test       full suite — unit, integration, recovery/chaos, determinism
#              (shuffled, to catch test-order dependence)
#   race       data-race detector: light infrastructure packages at full
#              scale, the heavy engine packages (osd, core, cluster, qa,
#              figures, scenario) in -short mode — their suites are deterministic by
#              construction but too slow under -race at full scale
#   bench      one-iteration smoke over every benchmark (compile + run,
#              no timing gate; scripts/bench.sh owns the regression gate)
#
# Usage: check.sh [race|lint]
#   (no arg)   run the full gate
#   race       run only the race-detector passes (the Makefile's `race`
#              target delegates here so the package lists live in exactly
#              one place)
#   lint       run only the static checks (go vet + afvet)
set -eu
cd "$(dirname "$0")/.."

run_lint() {
    echo "== go vet ./..."
    go vet ./...

    echo "== afvet ./..."
    go run ./cmd/afvet ./...

    echo "== afvet -audit-allows ./..."
    go run ./cmd/afvet -audit-allows ./...
}

run_race() {
    echo "== go test -race (light packages)"
    go test -race ./internal/sim/ ./internal/rng/ ./internal/stats/ \
        ./internal/crush/ ./internal/fault/ ./internal/netsim/ \
        ./internal/oslog/ ./internal/journal/ ./internal/kvstore/ \
        ./internal/trace/ ./internal/metrics/ ./internal/store/ \
        ./internal/redundancy/

    echo "== go test -race -short (engine packages)"
    go test -race -short ./internal/osd/ ./internal/core/ \
        ./internal/cluster/ ./internal/qa/ ./internal/figures/ \
        ./internal/scenario/
}

case "${1:-all}" in
race)
    run_race
    exit 0
    ;;
lint)
    run_lint
    exit 0
    ;;
all) ;;
*)
    echo "usage: check.sh [race|lint]" >&2
    exit 2
    ;;
esac

echo "== gofmt -l"
UNFMT="$(gofmt -l .)"
if [ -n "$UNFMT" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$UNFMT" >&2
    exit 1
fi

run_lint

echo "== go build ./..."
go build ./...

echo "== go test -shuffle=on ./..."
go test -shuffle=on ./...

run_race

echo "== go test -bench=. -benchtime=1x (smoke)"
go test -run '^$' -bench=. -benchtime=1x ./... >/dev/null

echo "tier-1 gate: OK"
