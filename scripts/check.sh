#!/bin/sh
# Tier-1 gate: everything a change must pass before it lands.
#
#   vet        static checks
#   build      every package compiles
#   test       full suite — unit, integration, recovery/chaos, determinism
#   race       data-race detector on the light infrastructure packages
#              (the full-cluster suites are single-goroutine-deterministic
#               by construction but too slow under -race to gate on)
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race (light packages)"
go test -race ./internal/sim/ ./internal/rng/ ./internal/stats/ \
    ./internal/crush/ ./internal/fault/ ./internal/netsim/

echo "tier-1 gate: OK"
