#!/bin/sh
# Benchmark-regression harness: run the figure benchmarks, emit
# BENCH_results.json, and gate against the committed BENCH_baseline.json.
#
#   scripts/bench.sh            # run + gate (exit 1 on regression)
#   scripts/bench.sh -update    # refresh the baseline (see EXPERIMENTS.md)
#
# Environment knobs:
#   BENCH_PATTERN  benchmark selector (default: the figure benchmarks)
#   BENCH_COUNT    repetitions per benchmark; best-of is kept (default 3)
#   BENCH_OUT      result file (default BENCH_results.json)
#
# Each figure benchmark reports ns/op, allocs/op, the figure's headline
# simulator outputs (IOPS, latency, speedup — gated exactly: they are
# deterministic) and sim-wall-x, the simulated/wall time-compression ratio
# (recorded, not gated). See cmd/benchgate for the gate rules.
set -eu
cd "$(dirname "$0")/.."

PATTERN="${BENCH_PATTERN:-Fig|DropIn|MixedRW|Backends|Scrub|Scenarios|ECvsRep}"
# A custom BENCH_PATTERN intentionally runs a subset of the baseline;
# benchgate would otherwise fail on the benchmarks the pattern skipped.
SUBSET=""
[ -n "${BENCH_PATTERN:-}" ] && SUBSET="-allow-subset"
COUNT="${BENCH_COUNT:-3}"
OUT="${BENCH_OUT:-BENCH_results.json}"
RAW="$(mktemp /tmp/bench_raw.XXXXXX)"
trap 'rm -f "$RAW"' EXIT

echo "== go test -bench '$PATTERN' -benchtime 1x -count $COUNT -benchmem"
go test -run '^$' -bench "$PATTERN" -benchtime 1x -count "$COUNT" -benchmem . | tee "$RAW"

go run ./cmd/benchgate -in "$RAW" -out "$OUT" -baseline BENCH_baseline.json $SUBSET "$@"
